"""Serving tier: per-region asyncio HTTP gateways over the strategy stack.

The package turns the simulated deployment into a real networked service
while keeping the *decisions* — cache hit/miss, chunk placement, degraded
flags, reconfiguration points — bit-identical to a seeded
:class:`repro.sim.engine.EventEngine` run on the same trace.  That makes the
simulation test suite an oracle for the served path:

- :mod:`repro.serve.protocol` — minimal dependency-free HTTP/1.1 framing
  with pipelining, size caps and clean 4xx error mapping.
- :mod:`repro.serve.ledger` — the canonical per-request decision ledger the
  equivalence harness compares.
- :mod:`repro.serve.gateway` — one asyncio gateway per region, mounted
  directly on ``ReadStrategy``/``ChunkCache``/``ErasureCodec``.
- :mod:`repro.serve.trace` — build a replayable trace (reads + tick/fault
  timers) and the expected ledgers from a kept-results engine run.
- :mod:`repro.serve.replay` — drive a trace through live gateways over real
  sockets and collect their ledgers.
- :mod:`repro.serve.loadgen` — open/closed-loop wire load generation with
  ``LatencyStats``-based reporting, plus the resilient wire client
  (deadlines, backoff, hedging, failover) for chaos runs.
- :mod:`repro.serve.chaos` — seeded wire-level fault injection against a
  live cluster: gateway crashes, connection resets, socket stalls,
  slowloris peers, and dynamically delivered modeled fault windows.
- :mod:`repro.serve.supervisor` — the supervising process manager:
  ``/healthz`` probing, crash detection, and warm (ledger-replay) or
  cold gateway recovery on the old port.
"""

from repro.serve.chaos import (ChaosEvent, ChaosInjector, ChaosSchedule,
                               ConnectionReset, GatewayCrash, SlowlorisPeer,
                               SocketStall)
from repro.serve.gateway import GatewaySettings, RegionGateway, ServeCluster
from repro.serve.ledger import LedgerEntry, ledger_from_lines, ledger_to_lines
from repro.serve.loadgen import (ConnectionStats, RegionWireResult,
                                 WireLoadSpec, WireResilience, run_wire_load,
                                 run_wire_load_sync, wire_report_table)
from repro.serve.replay import replay_trace, replay_trace_sync
from repro.serve.supervisor import (ClusterSupervisor, RecoveryRecord,
                                    SupervisorConfig, recovery_report_table)
from repro.serve.trace import SimTrace, TraceOp, trace_and_ledgers

__all__ = [
    "ChaosEvent",
    "ChaosInjector",
    "ChaosSchedule",
    "ClusterSupervisor",
    "ConnectionReset",
    "ConnectionStats",
    "GatewayCrash",
    "GatewaySettings",
    "LedgerEntry",
    "RecoveryRecord",
    "RegionGateway",
    "RegionWireResult",
    "ServeCluster",
    "SimTrace",
    "SlowlorisPeer",
    "SocketStall",
    "SupervisorConfig",
    "TraceOp",
    "WireLoadSpec",
    "WireResilience",
    "ledger_from_lines",
    "ledger_to_lines",
    "recovery_report_table",
    "replay_trace",
    "replay_trace_sync",
    "run_wire_load",
    "run_wire_load_sync",
    "trace_and_ledgers",
    "wire_report_table",
]
