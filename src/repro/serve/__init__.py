"""Serving tier: per-region asyncio HTTP gateways over the strategy stack.

The package turns the simulated deployment into a real networked service
while keeping the *decisions* — cache hit/miss, chunk placement, degraded
flags, reconfiguration points — bit-identical to a seeded
:class:`repro.sim.engine.EventEngine` run on the same trace.  That makes the
simulation test suite an oracle for the served path:

- :mod:`repro.serve.protocol` — minimal dependency-free HTTP/1.1 framing
  with pipelining, size caps and clean 4xx error mapping.
- :mod:`repro.serve.ledger` — the canonical per-request decision ledger the
  equivalence harness compares.
- :mod:`repro.serve.gateway` — one asyncio gateway per region, mounted
  directly on ``ReadStrategy``/``ChunkCache``/``ErasureCodec``.
- :mod:`repro.serve.trace` — build a replayable trace (reads + tick/fault
  timers) and the expected ledgers from a kept-results engine run.
- :mod:`repro.serve.replay` — drive a trace through live gateways over real
  sockets and collect their ledgers.
- :mod:`repro.serve.loadgen` — open/closed-loop wire load generation with
  ``LatencyStats``-based reporting.
"""

from repro.serve.gateway import GatewaySettings, RegionGateway, ServeCluster
from repro.serve.ledger import LedgerEntry, ledger_from_lines, ledger_to_lines
from repro.serve.loadgen import (RegionWireResult, WireLoadSpec, run_wire_load,
                                 run_wire_load_sync, wire_report_table)
from repro.serve.replay import replay_trace, replay_trace_sync
from repro.serve.trace import SimTrace, TraceOp, trace_and_ledgers

__all__ = [
    "GatewaySettings",
    "LedgerEntry",
    "RegionGateway",
    "RegionWireResult",
    "ServeCluster",
    "SimTrace",
    "TraceOp",
    "WireLoadSpec",
    "ledger_from_lines",
    "ledger_to_lines",
    "replay_trace",
    "replay_trace_sync",
    "run_wire_load",
    "run_wire_load_sync",
    "trace_and_ledgers",
    "wire_report_table",
]
