"""Wire-level load generation against live gateways.

Repurposes the workload machinery the event engine runs on — the same
Zipfian/uniform rank streams (:func:`generate_request_ranks`, one stream per
connection seeded like an engine lane) and the same
:class:`~repro.workload.workload.ArrivalSpec` pacing — but issues real HTTP
requests over real sockets and measures *wall-clock* latency into the same
:class:`~repro.client.stats.LatencyStats` the simulated reports use.

Closed loop keeps ``pipeline_depth`` requests in flight per connection
(YCSB-style, but windowed so one core can be saturated without one-at-a-time
round trips).  Open loop (Poisson) pre-draws each connection's arrival
schedule and records latency from the *scheduled* send time, the standard
coordinated-omission-free convention for open-loop generators.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.analysis.report import Table
from repro.client.stats import HitType, LatencyStats
from repro.serve.protocol import parse_response
from repro.workload.workload import (ArrivalSpec, WorkloadSpec,
                                     generate_request_ranks)

#: Per-connection seed stride; mirrors the engine's lane seeding so
#: connection 0 replays exactly the single-client stream.
CONNECTION_SEED_STRIDE = 7919


@dataclass(slots=True)
class WireLoadSpec:
    """One region's wire workload: streams, pacing and connection shape."""

    workload: WorkloadSpec
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    connections: int = 4
    pipeline_depth: int = 32
    requests_per_connection: int | None = None

    def connection_requests(self) -> int:
        """Requests each connection issues."""
        if self.requests_per_connection is not None:
            return self.requests_per_connection
        per = -(-self.workload.request_count // max(self.connections, 1))
        return max(per, 1)


@dataclass(slots=True)
class RegionWireResult:
    """Measured outcome of one region's wire run."""

    region: str
    stats: LatencyStats
    duration_s: float
    requests: int
    errors: int

    @property
    def throughput_rps(self) -> float:
        return self.stats.throughput_rps(self.duration_s)


def _request_bytes(key: str) -> bytes:
    return (f"GET /objects/{key} HTTP/1.1\r\nHost: loadgen\r\n\r\n").encode()


class _RegionRun:
    """Shared accounting for one region's worker connections."""

    __slots__ = ("stats", "errors")

    def __init__(self) -> None:
        self.stats = LatencyStats()
        self.errors = 0

    def record(self, latency_ms: float, status: int,
               headers: dict[str, str]) -> None:
        if status != 200 and status != 503:
            self.errors += 1
            return
        hit = headers.get("x-agar-hit", "miss")
        try:
            hit_type = HitType(hit)
        except ValueError:
            hit_type = HitType.MISS
        self.stats.record_read(
            latency_ms, hit_type,
            int(headers.get("x-agar-cache-chunks", "0") or 0),
            int(headers.get("x-agar-backend-chunks", "0") or 0),
            int(headers.get("x-agar-neighbor-chunks", "0") or 0),
            headers.get("x-agar-degraded") == "1",
            status == 503)


async def _drain_responses(reader: asyncio.StreamReader, buffer: bytearray,
                           offset: int, pending: deque, run: _RegionRun,
                           minimum: int) -> int:
    """Consume at least ``minimum`` buffered/incoming responses.

    Returns the number of responses consumed — callers must count completions
    from this value, not from ``len(pending)`` deltas, because a concurrent
    sender task may append to ``pending`` while this coroutine awaits.
    """
    perf = time.perf_counter
    consumed = 0
    while True:
        parsed = parse_response(buffer, offset)
        while parsed is None:
            if consumed >= minimum:
                if offset:
                    del buffer[:offset]
                return consumed
            if offset:
                del buffer[:offset]
                offset = 0
            data = await reader.read(1 << 16)
            if not data:
                raise ConnectionError("gateway closed during load run")
            buffer += data
            parsed = parse_response(buffer, offset)
        (status, headers, _body), offset = parsed
        run.record((perf() - pending.popleft()) * 1000.0, status, headers)
        consumed += 1


async def _closed_worker(address: tuple[str, int], keys: list[str],
                         depth: int, run: _RegionRun) -> None:
    reader, writer = await asyncio.open_connection(*address)
    perf = time.perf_counter
    buffer = bytearray()
    pending: deque[float] = deque()
    total = len(keys)
    sent = 0
    done = 0
    # Zipfian streams repeat keys heavily; render each request once.
    rendered: dict[str, bytes] = {}
    try:
        while done < total:
            if sent < total and len(pending) < depth:
                batch = []
                now = perf()
                while sent < total and len(pending) < depth:
                    key = keys[sent]
                    request = rendered.get(key)
                    if request is None:
                        rendered[key] = request = _request_bytes(key)
                    batch.append(request)
                    pending.append(now)
                    sent += 1
                writer.write(b"".join(batch))
            await writer.drain()
            done += await _drain_responses(reader, buffer, 0, pending, run, 1)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def _open_worker(address: tuple[str, int], keys: list[str],
                       schedule: np.ndarray, run: _RegionRun) -> None:
    reader, writer = await asyncio.open_connection(*address)
    perf = time.perf_counter
    buffer = bytearray()
    pending: deque[float] = deque()
    total = len(keys)
    origin = perf()
    absolute = origin + schedule

    async def sender() -> None:
        position = 0
        while position < total:
            now = perf()
            wrote = False
            while position < total and absolute[position] <= now:
                writer.write(_request_bytes(keys[position]))
                pending.append(absolute[position])
                position += 1
                wrote = True
            if wrote:
                await writer.drain()
            if position < total:
                await asyncio.sleep(
                    max(absolute[position] - perf(), 0.0))

    async def receiver() -> None:
        done = 0
        while done < total:
            if not pending:
                await asyncio.sleep(0.001)
                continue
            done += await _drain_responses(reader, buffer, 0, pending, run, 1)

    try:
        await asyncio.gather(sender(), receiver())
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def run_wire_load(addresses: Mapping[str, tuple[str, int]],
                        spec: WireLoadSpec, seed: int = 0,
                        ) -> dict[str, RegionWireResult]:
    """Run the wire workload against every region concurrently."""
    results: dict[str, RegionWireResult] = {}
    per_connection = spec.connection_requests()

    async def _region(index: int, region: str,
                      address: tuple[str, int]) -> None:
        run = _RegionRun()
        workers = []
        for connection in range(spec.connections):
            lane = index * spec.connections + connection
            lane_seed = seed + CONNECTION_SEED_STRIDE * lane
            ranks = generate_request_ranks(spec.workload, seed=lane_seed)
            keys = [spec.workload.key_for_rank(int(rank))
                    for rank in ranks[:per_connection]]
            if spec.arrival.is_open_loop:
                rng = np.random.default_rng((lane_seed, 0x5e7e))
                gaps = rng.exponential(spec.arrival.mean_interarrival_s,
                                       len(keys))
                schedule = np.cumsum(gaps)
                workers.append(_open_worker(address, keys, schedule, run))
            else:
                workers.append(_closed_worker(address, keys,
                                              spec.pipeline_depth, run))
        started = time.perf_counter()
        await asyncio.gather(*workers)
        duration = time.perf_counter() - started
        stats = run.stats
        results[region] = RegionWireResult(
            region=region, stats=stats, duration_s=duration,
            requests=stats.count + stats.unavailable_reads, errors=run.errors)

    await asyncio.gather(*(
        _region(index, region, address)
        for index, (region, address) in enumerate(addresses.items())))
    return results


def run_wire_load_sync(addresses: Mapping[str, tuple[str, int]],
                       spec: WireLoadSpec, seed: int = 0,
                       ) -> dict[str, RegionWireResult]:
    """Blocking wrapper around :func:`run_wire_load`."""
    return asyncio.run(run_wire_load(addresses, spec, seed))


def wire_report_table(results: Mapping[str, RegionWireResult],
                      title: str = "Wire-level serving latency") -> Table:
    """The wire twin of the simulated report tables (same stats source)."""
    table = Table(title=title, columns=[
        "region", "requests", "req/s", "mean ms", "p50 ms", "p95 ms",
        "p99 ms", "hit %", "errors"])
    for region, result in results.items():
        stats = result.stats
        table.add_row(
            region, result.requests, result.throughput_rps,
            stats.mean_latency_ms if stats.count else 0.0,
            stats.p50_latency_ms if stats.count else 0.0,
            stats.p95_latency_ms if stats.count else 0.0,
            stats.p99_latency_ms if stats.count else 0.0,
            stats.hit_ratio * 100.0,
            result.errors)
    return table
