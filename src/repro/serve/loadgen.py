"""Wire-level load generation against live gateways.

Repurposes the workload machinery the event engine runs on — the same
Zipfian/uniform rank streams (:func:`generate_request_ranks`, one stream per
connection seeded like an engine lane) and the same
:class:`~repro.workload.workload.ArrivalSpec` pacing — but issues real HTTP
requests over real sockets and measures *wall-clock* latency into the same
:class:`~repro.client.stats.LatencyStats` the simulated reports use.

Closed loop keeps ``pipeline_depth`` requests in flight per connection
(YCSB-style, but windowed so one core can be saturated without one-at-a-time
round trips).  Open loop (Poisson) pre-draws each connection's arrival
schedule and records latency from the *scheduled* send time, the standard
coordinated-omission-free convention for open-loop generators.

With a :class:`WireResilience` policy on the spec, each connection becomes a
**resilient client** — the wire port of the simulator's
:class:`~repro.client.resilience.ResilienceConfig` semantics:

* per-request deadlines from a per-endpoint EWMA-quantile tracker scaled by
  ``timeout_factor`` (``base_timeout_ms`` until the tracker warms up);
* deterministic seeded exponential backoff between reconnect attempts
  (:class:`~repro.client.resilience.BackoffPolicy`, keyed by lane);
* optional **hedging**: when the oldest in-flight request exceeds the home
  endpoint's tracked quantile, a duplicate is raced on a spare gateway and
  whichever answer lands first wins;
* **failover**: requests that exhaust ``retry_budget`` against a dead or
  stalled home gateway complete against the spare instead.

Retries/hedges flow into the shared :class:`LatencyStats` counters;
connection-level accounting (opens, reconnects, requests per connection,
timeouts, failovers) lands in :class:`ConnectionStats` — both surface in
:func:`wire_report_table`.  The conservation invariant of a resilient run is
``stats.count + stats.unavailable_reads + connections.failed_over ==
requests``: every intended request is recorded exactly once, as a measured
read, an unavailable read, or a failover completion.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.analysis.report import Table
from repro.client.resilience import (BackoffPolicy, EwmaQuantileTracker,
                                     ResilienceConfig)
from repro.client.stats import HitType, LatencyStats, ReadResult
from repro.serve.protocol import parse_response
from repro.workload.workload import (ArrivalSpec, WorkloadSpec,
                                     generate_request_ranks)

#: Per-connection seed stride; mirrors the engine's lane seeding so
#: connection 0 replays exactly the single-client stream.
CONNECTION_SEED_STRIDE = 7919


@dataclass(frozen=True, slots=True)
class WireResilience:
    """Resilient wire-client policy (the wire port of ResilienceConfig).

    Attributes:
        retry_budget: resends of one request (across reconnects) before it
            fails over to the spare gateway; 0 fails over immediately.
        base_timeout_ms: per-request deadline before the endpoint's latency
            tracker warms up (also bounds hedge/failover/spare reads).
        min_timeout_ms: floor under the tracked deadline.
        timeout_factor: warmed-up deadline is ``tracked_quantile × factor``.
        backoff_base_ms / backoff_multiplier / backoff_jitter / backoff_seed:
            :class:`BackoffPolicy` parameters for reconnect pacing.
        backoff_cap_ms: ceiling on any single backoff sleep (a wire client
            facing a supervised cluster should re-probe briskly).
        hedge: race a duplicate of the oldest straggler on the spare gateway
            once the home tracker is warm.
        hedge_quantile / hedge_ewma_alpha / hedge_min_samples:
            :class:`EwmaQuantileTracker` parameters, per endpoint.
        failover: complete budget-exhausted requests against the spare
            gateway (off = they become unavailable reads).
    """

    retry_budget: int = 2
    base_timeout_ms: float = 250.0
    min_timeout_ms: float = 20.0
    timeout_factor: float = 4.0
    backoff_base_ms: float = 5.0
    backoff_multiplier: float = 2.0
    backoff_jitter: float = 0.5
    backoff_seed: int = 0
    backoff_cap_ms: float = 250.0
    hedge: bool = False
    hedge_quantile: float = 0.95
    hedge_ewma_alpha: float = 0.05
    hedge_min_samples: int = 16
    failover: bool = True

    def __post_init__(self) -> None:
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be non-negative")
        if self.base_timeout_ms <= 0 or self.min_timeout_ms <= 0:
            raise ValueError("timeouts must be positive")
        if self.timeout_factor <= 1.0:
            raise ValueError("timeout_factor must exceed 1.0")

    @classmethod
    def from_config(cls, config: ResilienceConfig,
                    **overrides) -> "WireResilience":
        """Port a simulator ResilienceConfig onto the wire client."""
        fields = dict(
            retry_budget=config.retry_budget,
            timeout_factor=max(config.timeout_factor, 1.5),
            backoff_base_ms=config.backoff_base_ms,
            backoff_multiplier=config.backoff_multiplier,
            backoff_jitter=config.backoff_jitter,
            backoff_seed=config.backoff_seed,
            hedge=config.hedge,
            hedge_quantile=config.hedge_quantile,
            hedge_ewma_alpha=config.hedge_ewma_alpha,
            hedge_min_samples=config.hedge_min_samples,
        )
        fields.update(overrides)
        return cls(**fields)


@dataclass(slots=True)
class ConnectionStats:
    """Keep-alive and resilience accounting for one region's wire run."""

    connections_opened: int = 0
    reconnects: int = 0
    requests_sent: int = 0       #: wire sends, including resends and hedges
    timeouts: int = 0            #: deadline expiries that forced a reconnect
    hedges_sent: int = 0
    failed_over: int = 0         #: requests completed via the spare gateway

    @property
    def requests_per_connection(self) -> float:
        """Mean requests sent per opened connection (keep-alive reuse)."""
        if self.connections_opened == 0:
            return 0.0
        return self.requests_sent / self.connections_opened

    def merge(self, other: "ConnectionStats") -> None:
        self.connections_opened += other.connections_opened
        self.reconnects += other.reconnects
        self.requests_sent += other.requests_sent
        self.timeouts += other.timeouts
        self.hedges_sent += other.hedges_sent
        self.failed_over += other.failed_over


@dataclass(slots=True)
class WireLoadSpec:
    """One region's wire workload: streams, pacing and connection shape."""

    workload: WorkloadSpec
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    connections: int = 4
    pipeline_depth: int = 32
    requests_per_connection: int | None = None
    resilience: WireResilience | None = None
    keep_samples: bool = False

    def connection_requests(self) -> int:
        """Requests each connection issues."""
        if self.requests_per_connection is not None:
            return self.requests_per_connection
        per = -(-self.workload.request_count // max(self.connections, 1))
        return max(per, 1)


@dataclass(slots=True)
class RegionWireResult:
    """Measured outcome of one region's wire run."""

    region: str
    stats: LatencyStats
    duration_s: float
    requests: int
    errors: int
    connections: ConnectionStats = field(default_factory=ConnectionStats)
    samples: list = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.stats.throughput_rps(self.duration_s)

    @property
    def availability(self) -> float:
        """Fraction of intended requests that completed somewhere."""
        if self.requests == 0:
            return 1.0
        completed = self.stats.count + self.connections.failed_over
        return completed / self.requests


def _request_bytes(key: str) -> bytes:
    return (f"GET /objects/{key} HTTP/1.1\r\nHost: loadgen\r\n\r\n").encode()


class _RegionRun:
    """Shared accounting for one region's worker connections."""

    __slots__ = ("stats", "errors", "connections", "samples")

    def __init__(self, keep_samples: bool = False) -> None:
        self.stats = LatencyStats()
        self.errors = 0
        self.connections = ConnectionStats()
        self.samples: list[ReadResult] | None = [] if keep_samples else None

    def record(self, latency_ms: float, status: int,
               headers: Mapping[str, str], *, key: str = "",
               started_at_s: float = 0.0, retries: int = 0,
               hedged: bool = False, hedge_won: bool = False) -> None:
        if status != 200 and status != 503:
            self.errors += 1
            return
        hit = headers.get("x-agar-hit", "miss")
        try:
            hit_type = HitType(hit)
        except ValueError:
            hit_type = HitType.MISS
        cache_chunks = int(headers.get("x-agar-cache-chunks", "0") or 0)
        backend_chunks = int(headers.get("x-agar-backend-chunks", "0") or 0)
        neighbor_chunks = int(headers.get("x-agar-neighbor-chunks", "0") or 0)
        degraded = headers.get("x-agar-degraded") == "1"
        failed = status == 503
        self.stats.record_read(
            latency_ms, hit_type, cache_chunks, backend_chunks,
            neighbor_chunks, degraded, failed, retries, hedged, hedge_won)
        if self.samples is not None:
            self.samples.append(ReadResult(
                key, latency_ms, hit_type, cache_chunks, backend_chunks,
                started_at_s=started_at_s,
                chunks_from_neighbors=neighbor_chunks, degraded=degraded,
                failed=failed, retries=retries, hedged=hedged,
                hedge_won=hedge_won))


async def _drain_responses(reader: asyncio.StreamReader, buffer: bytearray,
                           offset: int, pending: deque, run: _RegionRun,
                           minimum: int, origin: float) -> int:
    """Consume at least ``minimum`` buffered/incoming responses.

    Returns the number of responses consumed — callers must count completions
    from this value, not from ``len(pending)`` deltas, because a concurrent
    sender task may append to ``pending`` while this coroutine awaits.
    """
    perf = time.perf_counter
    consumed = 0
    while True:
        parsed = parse_response(buffer, offset)
        while parsed is None:
            if consumed >= minimum:
                if offset:
                    del buffer[:offset]
                return consumed
            if offset:
                del buffer[:offset]
                offset = 0
            data = await reader.read(1 << 16)
            if not data:
                raise ConnectionError("gateway closed during load run")
            buffer += data
            parsed = parse_response(buffer, offset)
        (status, headers, _body), offset = parsed
        started = pending.popleft()
        run.record((perf() - started) * 1000.0, status, headers,
                   started_at_s=started - origin)
        consumed += 1


async def _closed_worker(address: tuple[str, int], keys: list[str],
                         depth: int, run: _RegionRun, origin: float) -> None:
    reader, writer = await asyncio.open_connection(*address)
    run.connections.connections_opened += 1
    perf = time.perf_counter
    buffer = bytearray()
    pending: deque[float] = deque()
    total = len(keys)
    sent = 0
    done = 0
    # Zipfian streams repeat keys heavily; render each request once.
    rendered: dict[str, bytes] = {}
    try:
        while done < total:
            if sent < total and len(pending) < depth:
                batch = []
                now = perf()
                while sent < total and len(pending) < depth:
                    key = keys[sent]
                    request = rendered.get(key)
                    if request is None:
                        rendered[key] = request = _request_bytes(key)
                    batch.append(request)
                    pending.append(now)
                    sent += 1
                writer.write(b"".join(batch))
            await writer.drain()
            done += await _drain_responses(reader, buffer, 0, pending, run,
                                           1, origin)
    finally:
        run.connections.requests_sent += sent
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def _open_worker(address: tuple[str, int], keys: list[str],
                       schedule: np.ndarray, run: _RegionRun,
                       run_origin: float) -> None:
    reader, writer = await asyncio.open_connection(*address)
    run.connections.connections_opened += 1
    perf = time.perf_counter
    buffer = bytearray()
    pending: deque[float] = deque()
    total = len(keys)
    origin = perf()
    absolute = origin + schedule
    sent_total = 0

    async def sender() -> None:
        nonlocal sent_total
        position = 0
        while position < total:
            now = perf()
            wrote = False
            while position < total and absolute[position] <= now:
                writer.write(_request_bytes(keys[position]))
                pending.append(absolute[position])
                position += 1
                wrote = True
            if wrote:
                sent_total = position
                await writer.drain()
            if position < total:
                await asyncio.sleep(
                    max(absolute[position] - perf(), 0.0))

    async def receiver() -> None:
        done = 0
        while done < total:
            if not pending:
                await asyncio.sleep(0.001)
                continue
            done += await _drain_responses(reader, buffer, 0, pending, run,
                                           1, run_origin)

    try:
        await asyncio.gather(sender(), receiver())
    finally:
        run.connections.requests_sent += sent_total
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


# --------------------------------------------------------------------- #
# Resilient wire client
# --------------------------------------------------------------------- #
class _Pending:
    """One intended request's lifecycle across resends and hedges."""

    __slots__ = ("key", "origin", "sent_at", "attempts", "hedged", "done")

    def __init__(self, key: str, origin: float, sent_at: float) -> None:
        self.key = key
        self.origin = origin     #: perf time latency is measured from
        self.sent_at = sent_at   #: perf time of the latest (re)send
        self.attempts = 0        #: resends after the first send
        self.hedged = False
        self.done = False


async def _one_shot_request(address: tuple[str, int], request: bytes,
                            timeout_s: float):
    """One request over a throwaway connection (the hedge path).

    Returns ``(status, headers, elapsed_ms)`` or ``None`` on any failure.
    """
    perf = time.perf_counter
    started = perf()
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(*address), timeout=timeout_s)
    except (OSError, asyncio.TimeoutError):
        return None
    try:
        writer.write(request)
        await writer.drain()
        buffer = bytearray()
        deadline = started + timeout_s
        while True:
            parsed = parse_response(buffer, 0)
            if parsed is not None:
                (status, headers, _body), _offset = parsed
                return status, headers, (perf() - started) * 1000.0
            remaining = deadline - perf()
            if remaining <= 0:
                return None
            data = await asyncio.wait_for(reader.read(1 << 16),
                                          timeout=remaining)
            if not data:
                return None
            buffer += data
    except (OSError, asyncio.TimeoutError):
        return None
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


class _ResilientWorker:
    """One connection's resilient request loop (closed or open loop).

    A single sequential task owns the home connection: it sends due
    requests, consumes pipelined responses, and reacts to deadline expiry,
    connection loss and gateway refusal by reconnecting with deterministic
    backoff, resending undone requests in order, and failing requests over
    to the spare gateway once their budget is spent.  Response alignment is
    positional (HTTP/1.1 pipelining), so a reconnect voids the old pipeline:
    only undone requests are resent, and hedge-completed entries keep their
    pending slot while the home connection lives so the duplicate home
    response is consumed and discarded.
    """

    def __init__(self, address, spare, keys, schedule, depth,
                 run: _RegionRun, res: WireResilience, lane: int,
                 run_origin: float) -> None:
        self.address = address
        self.spare = spare
        self.keys = keys
        self.schedule = schedule      # absolute perf send times, or None
        self.depth = depth
        self.region_run = run
        self.res = res
        self.lane = lane
        self.run_origin = run_origin
        self.backoff = BackoffPolicy(res.backoff_base_ms,
                                     res.backoff_multiplier,
                                     res.backoff_jitter, res.backoff_seed)
        self.trackers = {
            "home": EwmaQuantileTracker(res.hedge_quantile,
                                        res.hedge_ewma_alpha,
                                        res.hedge_min_samples),
            "spare": EwmaQuantileTracker(res.hedge_quantile,
                                         res.hedge_ewma_alpha,
                                         res.hedge_min_samples),
        }
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.buffer = bytearray()
        self.pending: deque[_Pending] = deque()
        self.inflight = 0             #: undone entries in ``pending``
        self.sent = 0
        self.finished = 0
        self.connect_failures = 0
        self.ever_connected = False
        self.rendered: dict[str, bytes] = {}
        self.read_task: asyncio.Task | None = None
        self.hedge_task: asyncio.Task | None = None
        self.hedge_entry: _Pending | None = None
        self.spare_reader: asyncio.StreamReader | None = None
        self.spare_writer: asyncio.StreamWriter | None = None
        self.spare_buffer = bytearray()

    def _render(self, key: str) -> bytes:
        request = self.rendered.get(key)
        if request is None:
            self.rendered[key] = request = _request_bytes(key)
        return request

    def _timeout_s(self) -> float:
        tracker = self.trackers["home"]
        if tracker.ready:
            return max(tracker.estimate * self.res.timeout_factor,
                       self.res.min_timeout_ms) / 1000.0
        return self.res.base_timeout_ms / 1000.0

    def _oldest_undone(self) -> _Pending | None:
        for entry in self.pending:
            if not entry.done:
                return entry
        return None

    def _finish(self, entry: _Pending, status: int, headers,
                hedge_won: bool) -> None:
        entry.done = True
        self.inflight -= 1
        self.finished += 1
        latency_ms = (time.perf_counter() - entry.origin) * 1000.0
        self.region_run.record(latency_ms, status, headers, key=entry.key,
                        started_at_s=entry.origin - self.run_origin,
                        retries=entry.attempts, hedged=entry.hedged,
                        hedge_won=hedge_won)

    # ------------------------------------------------------------------ #
    # Connection management
    # ------------------------------------------------------------------ #
    def _lost_connection(self) -> None:
        if self.writer is not None:
            transport = self.writer.transport
            if transport is not None:
                transport.abort()
        self.writer = None
        self.reader = None
        self.buffer.clear()
        if self.read_task is not None:
            self.read_task.cancel()
            self.read_task = None

    async def _reconnect(self) -> None:
        """One reconnect attempt; on repeated refusal, drain via the spare."""
        conn = self.region_run.connections
        try:
            self.reader, self.writer = await asyncio.open_connection(
                *self.address)
        except OSError:
            self.connect_failures += 1
            if (self.spare is not None and self.res.failover
                    and self.connect_failures > self.res.retry_budget):
                await self._drain_via_spare()
            delay_ms = self.backoff.delay_ms(
                self.lane, min(self.connect_failures, 16))
            delay_ms = min(max(delay_ms, 1.0), self.res.backoff_cap_ms)
            await asyncio.sleep(delay_ms / 1000.0)
            return
        conn.connections_opened += 1
        if self.ever_connected:
            conn.reconnects += 1
        self.ever_connected = True
        self.connect_failures = 0
        self.buffer.clear()
        # The old pipeline is void: keep only undone entries and resend
        # them in order (reads are idempotent); budget-exhausted entries
        # fail over instead.
        survivors: deque[_Pending] = deque()
        batch: list[bytes] = []
        now = time.perf_counter()
        for entry in self.pending:
            if entry.done:
                continue
            entry.attempts += 1
            if (entry.attempts > self.res.retry_budget
                    and self.spare is not None and self.res.failover):
                self.inflight -= 1
                await self._failover(entry)
                continue
            entry.sent_at = now
            survivors.append(entry)
            batch.append(self._render(entry.key))
        self.pending = survivors
        self.inflight = len(survivors)
        if batch:
            conn.requests_sent += len(batch)
            try:
                self.writer.write(b"".join(batch))
                await self.writer.drain()
            except (OSError, ConnectionError):
                self._lost_connection()

    async def _drain_via_spare(self) -> None:
        """Home is refusing connections: push stuck work to the spare."""
        survivors: deque[_Pending] = deque()
        for entry in self.pending:
            if entry.done:
                continue
            entry.attempts += 1
            if entry.attempts > self.res.retry_budget:
                self.inflight -= 1
                await self._failover(entry)
            else:
                survivors.append(entry)
        self.pending = survivors
        self.inflight = len(survivors)
        # New work that came due during the outage goes straight over,
        # one pipeline window at a time so a brief crash does not dump the
        # whole stream onto the spare.
        moved = 0
        perf = time.perf_counter
        total = len(self.keys)
        while self.sent < total and moved < self.depth:
            now = perf()
            if self.schedule is None:
                if self.inflight or self.pending:
                    break
                origin = now
            else:
                if self.schedule[self.sent] > now:
                    break
                origin = float(self.schedule[self.sent])
            entry = _Pending(self.keys[self.sent], origin, now)
            entry.attempts = self.res.retry_budget + 1
            self.sent += 1
            moved += 1
            await self._failover(entry)

    async def _failover(self, entry: _Pending) -> None:
        """Complete one entry via the spare gateway (or as unavailable)."""
        entry.done = True
        self.finished += 1
        result = await self._spare_fetch(entry.key)
        if result is None:
            # Both endpoints unreachable: an honest unavailable read.
            self.region_run.record(0.0, 503, {}, key=entry.key,
                            started_at_s=entry.origin - self.run_origin,
                            retries=entry.attempts)
            return
        _status, _headers, elapsed_ms = result
        self.region_run.connections.failed_over += 1
        self.trackers["spare"].observe(elapsed_ms)

    async def _spare_fetch(self, key: str):
        """One request over the persistent spare connection (two attempts)."""
        if self.spare is None:
            return None
        perf = time.perf_counter
        conn = self.region_run.connections
        request = self._render(key)
        timeout_s = self.res.base_timeout_ms / 1000.0
        for _ in range(2):
            if self.spare_writer is None:
                try:
                    self.spare_reader, self.spare_writer = (
                        await asyncio.open_connection(*self.spare))
                except OSError:
                    await asyncio.sleep(0.005)
                    continue
                conn.connections_opened += 1
                self.spare_buffer.clear()
            started = perf()
            try:
                self.spare_writer.write(request)
                await self.spare_writer.drain()
                conn.requests_sent += 1
                while True:
                    parsed = parse_response(self.spare_buffer, 0)
                    if parsed is not None:
                        (status, headers, _body), offset = parsed
                        del self.spare_buffer[:offset]
                        return status, headers, (perf() - started) * 1000.0
                    data = await asyncio.wait_for(
                        self.spare_reader.read(1 << 16), timeout=timeout_s)
                    if not data:
                        raise ConnectionError("spare closed")
                    self.spare_buffer += data
            except (OSError, ConnectionError, asyncio.TimeoutError):
                transport = self.spare_writer.transport
                if transport is not None:
                    transport.abort()
                self.spare_writer = None
                self.spare_reader = None
        return None

    # ------------------------------------------------------------------ #
    # Send / receive / timers
    # ------------------------------------------------------------------ #
    async def _send_due(self) -> None:
        total = len(self.keys)
        batch: list[bytes] = []
        now = time.perf_counter()
        while self.sent < total:
            if self.schedule is None:
                if self.inflight >= self.depth:
                    break
                origin = now
            else:
                if self.schedule[self.sent] > now:
                    break
                origin = float(self.schedule[self.sent])
            entry = _Pending(self.keys[self.sent], origin, now)
            self.pending.append(entry)
            self.inflight += 1
            batch.append(self._render(entry.key))
            self.sent += 1
        if batch:
            self.region_run.connections.requests_sent += len(batch)
            try:
                self.writer.write(b"".join(batch))
                await self.writer.drain()
            except (OSError, ConnectionError):
                self._lost_connection()

    def _consume(self, data: bytes) -> None:
        self.buffer += data
        offset = 0
        perf = time.perf_counter
        while True:
            parsed = parse_response(self.buffer, offset)
            if parsed is None:
                break
            (status, headers, _body), offset = parsed
            entry = self.pending.popleft()
            if entry.done:
                continue  # the hedge already answered; discard the duplicate
            now = perf()
            if status == 200:
                self.trackers["home"].observe((now - entry.sent_at) * 1000.0)
            self._finish(entry, status, headers, hedge_won=False)
            if self.hedge_entry is entry:
                self.hedge_task.cancel()
                self.hedge_task = None
                self.hedge_entry = None
        if offset:
            del self.buffer[:offset]

    def _launch_hedge(self, entry: _Pending) -> None:
        entry.hedged = True
        self.region_run.connections.hedges_sent += 1
        self.hedge_entry = entry
        self.hedge_task = asyncio.ensure_future(_one_shot_request(
            self.spare, self._render(entry.key),
            self.res.base_timeout_ms / 1000.0))

    def _finish_hedge(self) -> None:
        task = self.hedge_task
        entry = self.hedge_entry
        self.hedge_task = None
        self.hedge_entry = None
        try:
            result = task.result()
        except (asyncio.CancelledError, OSError):
            result = None
        if result is None or entry is None or entry.done:
            return
        status, headers, elapsed_ms = result
        self.trackers["spare"].observe(elapsed_ms)
        self._finish(entry, status, headers, hedge_won=True)
        # The entry keeps its pending slot: the home response (if the home
        # connection survives) is consumed and discarded by _consume.

    def _hedge_due_at(self, oldest: _Pending) -> float | None:
        if (not self.res.hedge or self.spare is None
                or self.hedge_task is not None or oldest.hedged):
            return None
        tracker = self.trackers["home"]
        if not tracker.ready:
            return None
        return oldest.sent_at + tracker.estimate / 1000.0

    async def _wait_for_event(self) -> None:
        perf = time.perf_counter
        oldest = self._oldest_undone()
        wait_until = float("inf")
        hedge_at = None
        if oldest is not None:
            wait_until = oldest.sent_at + self._timeout_s()
            hedge_at = self._hedge_due_at(oldest)
            if hedge_at is not None:
                wait_until = min(wait_until, hedge_at)
        if self.schedule is not None and self.sent < len(self.keys):
            wait_until = min(wait_until, float(self.schedule[self.sent]))
        if oldest is None and wait_until == float("inf"):
            return  # closed loop with an empty window: send immediately
        if self.read_task is None:
            self.read_task = asyncio.ensure_future(self.reader.read(1 << 16))
        waits = {self.read_task}
        if self.hedge_task is not None:
            waits.add(self.hedge_task)
        timeout = (None if wait_until == float("inf")
                   else max(wait_until - perf(), 0.0))
        done, _ = await asyncio.wait(waits, timeout=timeout,
                                     return_when=asyncio.FIRST_COMPLETED)
        if self.hedge_task is not None and self.hedge_task in done:
            self._finish_hedge()
        if self.read_task in done:
            task = self.read_task
            self.read_task = None
            try:
                data = task.result()
            except (OSError, ConnectionError):
                data = b""
            if not data:
                self._lost_connection()
                return
            self._consume(data)
            return
        if not done:
            now = perf()
            oldest = self._oldest_undone()
            if oldest is None:
                return
            if hedge_at is not None and now >= hedge_at and not oldest.hedged:
                self._launch_hedge(oldest)
            elif now >= oldest.sent_at + self._timeout_s():
                # Deadline expired: declare the connection suspect, force a
                # reconnect (which resends or fails over the stuck entries).
                self.region_run.connections.timeouts += 1
                self._lost_connection()

    async def run(self) -> None:
        total = len(self.keys)
        try:
            while self.finished < total:
                if self.writer is None:
                    await self._reconnect()
                    continue
                await self._send_due()
                if self.writer is None:
                    continue
                await self._wait_for_event()
        finally:
            if self.read_task is not None:
                self.read_task.cancel()
            if self.hedge_task is not None:
                self.hedge_task.cancel()
            for writer in (self.writer, self.spare_writer):
                if writer is None:
                    continue
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass


async def run_wire_load(addresses: Mapping[str, tuple[str, int]],
                        spec: WireLoadSpec, seed: int = 0,
                        ) -> dict[str, RegionWireResult]:
    """Run the wire workload against every region concurrently."""
    results: dict[str, RegionWireResult] = {}
    per_connection = spec.connection_requests()
    ordered = list(addresses.items())

    async def _region(index: int, region: str,
                      address: tuple[str, int]) -> None:
        run = _RegionRun(keep_samples=spec.keep_samples)
        spare = (ordered[(index + 1) % len(ordered)][1]
                 if spec.resilience is not None and len(ordered) > 1
                 else None)
        origin = time.perf_counter()
        workers = []
        for connection in range(spec.connections):
            lane = index * spec.connections + connection
            lane_seed = seed + CONNECTION_SEED_STRIDE * lane
            ranks = generate_request_ranks(spec.workload, seed=lane_seed)
            keys = [spec.workload.key_for_rank(int(rank))
                    for rank in ranks[:per_connection]]
            schedule = None
            if spec.arrival.is_open_loop:
                rng = np.random.default_rng((lane_seed, 0x5e7e))
                gaps = rng.exponential(spec.arrival.mean_interarrival_s,
                                       len(keys))
                schedule = np.cumsum(gaps)
            if spec.resilience is not None:
                absolute = origin + schedule if schedule is not None else None
                workers.append(_ResilientWorker(
                    address, spare, keys, absolute, spec.pipeline_depth,
                    run, spec.resilience, lane, origin).run())
            elif schedule is not None:
                workers.append(_open_worker(address, keys, schedule, run,
                                            origin))
            else:
                workers.append(_closed_worker(address, keys,
                                              spec.pipeline_depth, run,
                                              origin))
        started = time.perf_counter()
        await asyncio.gather(*workers)
        duration = time.perf_counter() - started
        stats = run.stats
        results[region] = RegionWireResult(
            region=region, stats=stats, duration_s=duration,
            requests=per_connection * spec.connections, errors=run.errors,
            connections=run.connections,
            samples=run.samples if run.samples is not None else [])

    await asyncio.gather(*(
        _region(index, region, address)
        for index, (region, address) in enumerate(ordered)))
    return results


def run_wire_load_sync(addresses: Mapping[str, tuple[str, int]],
                       spec: WireLoadSpec, seed: int = 0,
                       ) -> dict[str, RegionWireResult]:
    """Blocking wrapper around :func:`run_wire_load`."""
    return asyncio.run(run_wire_load(addresses, spec, seed))


def wire_report_table(results: Mapping[str, RegionWireResult],
                      title: str = "Wire-level serving latency") -> Table:
    """The wire twin of the simulated report tables (same stats source)."""
    table = Table(title=title, columns=[
        "region", "requests", "req/s", "mean ms", "p50 ms", "p95 ms",
        "p99 ms", "hit %", "errors", "retries", "hedged", "failover",
        "conns", "req/conn", "reconn"])
    for region, result in results.items():
        stats = result.stats
        conn = result.connections
        table.add_row(
            region, result.requests, result.throughput_rps,
            stats.mean_latency_ms if stats.count else 0.0,
            stats.p50_latency_ms if stats.count else 0.0,
            stats.p95_latency_ms if stats.count else 0.0,
            stats.p99_latency_ms if stats.count else 0.0,
            stats.hit_ratio * 100.0,
            result.errors,
            stats.retries_total,
            stats.hedged_reads,
            conn.failed_over,
            conn.connections_opened,
            conn.requests_per_connection,
            conn.reconnects)
    return table
