"""The per-request decision ledger the equivalence harness compares.

A ledger is the ordered list of *decisions* a region made: one ``read``
entry per object read (hit class, chunk counts, backend placement, degraded
and failed flags), plus ``tick`` and ``fault`` entries marking the exact
points where timer-driven reconfiguration and fault transitions interleaved
with the reads.  Entries deliberately exclude latencies — wire time and
modeled time are incomparable — and include everything that *is* comparable
bit-for-bit between a live gateway and a seeded
:class:`~repro.sim.engine.EventEngine` run.

The canonical line encoding (:func:`ledger_to_lines` /
:func:`ledger_from_lines`) round-trips exactly: floats are encoded with
``repr`` so ``float(repr(x)) == x``, and the gateway's ``GET /ledger``
endpoint serves precisely these lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.client.stats import ReadResult

KIND_READ = "read"
KIND_TICK = "tick"
KIND_FAULT = "fault"
KIND_CRASH = "crash"
KIND_RECOVERY = "recovery"

#: ``fault_index`` of a dynamically installed (wire-delivered) fault state,
#: as opposed to an index into a precompiled schedule (``>= 0``) or the
#: initial install (``-1``).
DYNAMIC_FAULT_INDEX = -2

_FIELD_COUNT = 10


@dataclass(frozen=True, slots=True)
class LedgerEntry:
    """One decision: a read, a reconfiguration tick, or a fault transition.

    ``at`` is the simulated time the decision was taken at (the read's
    arrival, the timer's fire time).  ``fault_index`` is the index into the
    fault schedule's transition list, ``-1`` for the initial state installed
    at deployment time.  Read-only fields are zero/empty for timer entries.
    """

    kind: str
    at: float
    key: str = ""
    hit: str = ""
    cache_chunks: int = 0
    backend_chunks: int = 0
    neighbor_chunks: int = 0
    backend_regions: tuple[str, ...] = field(default=())
    degraded: bool = False
    failed: bool = False
    fault_index: int = 0

    def to_line(self) -> str:
        """Canonical one-line encoding (pipe-separated, repr floats)."""
        return "|".join((
            self.kind,
            repr(self.at),
            self.key,
            self.hit,
            str(self.cache_chunks),
            str(self.backend_chunks),
            str(self.neighbor_chunks),
            ",".join(self.backend_regions),
            "1" if self.degraded else "0",
            "1" if self.failed else "0",
            str(self.fault_index),
        ))

    @classmethod
    def from_line(cls, line: str) -> "LedgerEntry":
        parts = line.rstrip("\n").split("|")
        if len(parts) != _FIELD_COUNT + 1:
            raise ValueError(f"malformed ledger line: {line!r}")
        (kind, at, key, hit, cache, backend, neighbors, regions,
         degraded, failed, fault_index) = parts
        return cls(
            kind=kind,
            at=float(at),
            key=key,
            hit=hit,
            cache_chunks=int(cache),
            backend_chunks=int(backend),
            neighbor_chunks=int(neighbors),
            backend_regions=tuple(regions.split(",")) if regions else (),
            degraded=degraded == "1",
            failed=failed == "1",
            fault_index=int(fault_index),
        )


def read_entry(result: ReadResult) -> LedgerEntry:
    """The ledger entry for one composed read result."""
    return LedgerEntry(
        kind=KIND_READ,
        at=result.started_at_s,
        key=result.key,
        hit=result.hit_type.value,
        cache_chunks=result.chunks_from_cache,
        backend_chunks=result.chunks_from_backend,
        neighbor_chunks=result.chunks_from_neighbors,
        backend_regions=tuple(result.backend_regions),
        degraded=result.degraded,
        failed=result.failed,
    )


def tick_entry(at: float) -> LedgerEntry:
    """The ledger entry for one timer-driven reconfiguration tick."""
    return LedgerEntry(kind=KIND_TICK, at=at)


def fault_entry(at: float, fault_index: int) -> LedgerEntry:
    """The ledger entry for one fault-state install (``-1`` = initial)."""
    return LedgerEntry(kind=KIND_FAULT, at=at, fault_index=fault_index)


def crash_entry(at: float) -> LedgerEntry:
    """The ledger entry marking a detected gateway crash.

    Appended by the supervisor when it takes a region down for recovery, so
    the durable ledger records exactly where the decision stream was cut.
    """
    return LedgerEntry(kind=KIND_CRASH, at=at)


def recovery_entry(at: float, entries_restored: int,
                   mode: str = "warm") -> LedgerEntry:
    """The ledger entry closing a crash/recovery cycle.

    Reuses existing fields so the line codec stays at one format: ``hit``
    carries the recovery mode (``"warm"``/``"cold"``) and ``cache_chunks``
    the number of cache entries the warm-recovery replay restored.
    """
    return LedgerEntry(kind=KIND_RECOVERY, at=at, hit=mode,
                       cache_chunks=entries_restored)


def ledger_to_lines(entries: Iterable[LedgerEntry]) -> str:
    """Encode a ledger as newline-terminated canonical lines."""
    return "".join(entry.to_line() + "\n" for entry in entries)


def ledger_from_lines(text: str) -> list[LedgerEntry]:
    """Decode a ledger from its canonical line encoding."""
    return [LedgerEntry.from_line(line)
            for line in text.splitlines() if line]


def diff_ledgers(expected: Sequence[LedgerEntry],
                 actual: Sequence[LedgerEntry]) -> str | None:
    """Human-readable first divergence between two ledgers (None if equal)."""
    for position, (want, got) in enumerate(zip(expected, actual)):
        if want != got:
            return (f"ledgers diverge at entry {position}:\n"
                    f"  expected: {want.to_line()}\n"
                    f"  actual:   {got.to_line()}")
    if len(expected) != len(actual):
        return (f"ledger lengths differ: expected {len(expected)} entries, "
                f"got {len(actual)}")
    return None
