"""Request-distribution generators: Zipfian and uniform (YCSB-style).

The paper's workloads are read-only and drawn either from a uniform
distribution or from Zipfian distributions with skew exponents between 0.2 and
1.4 (§V-A, §V-C).  The Zipfian generator here uses the standard finite-support
form ``P(rank i) ∝ 1 / i^s`` over ``n`` items, sampled through a precomputed
CDF, which matches YCSB's definition for the purposes of the evaluation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


def _make_rng(seed) -> np.random.Generator:
    """``np.random.default_rng(seed)`` minus its argument dispatch.

    Bit-identical for integer seeds (``default_rng`` wraps them in exactly
    this ``Generator(PCG64(SeedSequence(seed)))`` chain) but measurably
    cheaper — million-lane simulations construct one generator per client,
    so the dispatch overhead alone is seconds of setup time.
    """
    if type(seed) is int:
        return np.random.Generator(np.random.PCG64(np.random.SeedSequence(seed)))
    return np.random.default_rng(seed)


class KeyDistribution(ABC):
    """A distribution over item ranks ``0 .. n-1`` (rank 0 = most popular)."""

    def __init__(self, item_count: int, seed: int = 0) -> None:
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        self._item_count = item_count
        self._rng = _make_rng(seed)
        self._seed = seed
        self._sampling_cdf: np.ndarray | None = None

    @property
    def item_count(self) -> int:
        """Number of distinct items."""
        return self._item_count

    @property
    def seed(self) -> int:
        """Seed the generator was created with."""
        return self._seed

    def reseed(self, seed: int) -> None:
        """Restart the random stream."""
        self._rng = _make_rng(seed)
        self._seed = seed

    @abstractmethod
    def probabilities(self) -> np.ndarray:
        """Per-rank probabilities (length ``item_count``, sums to 1)."""

    def sample(self) -> int:
        """Draw a single rank."""
        return int(self.sample_many(1)[0])

    def sample_many(self, count: int) -> np.ndarray:
        """Draw ``count`` ranks as an ``int64`` array.

        Replays ``Generator.choice(item_count, size=count, p=...)``
        bit-identically — the same normalised-CDF ``searchsorted`` over the
        same uniform draws — but against a cached CDF, skipping ``choice``'s
        per-call probability copy, validation and ``cumsum`` (a ~3.5×
        speedup that million-client simulations pay once per lane).
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        cdf = self._sampling_cdf
        if cdf is None:
            cdf = self.probabilities().cumsum()
            cdf /= cdf[-1]
            cdf.flags.writeable = False
            self._sampling_cdf = cdf
        uniform = self._rng.random(count)
        return np.asarray(cdf.searchsorted(uniform, side="right"), dtype=np.int64)

    def cdf(self) -> np.ndarray:
        """Cumulative distribution over ranks (what Fig. 9 plots)."""
        return np.cumsum(self.probabilities())


#: Memoised Zipfian probability vectors.  Multi-client simulations build one
#: distribution per client over the same (item_count, skew); the vector is a
#: pure function of those two, so it is computed once and shared read-only
#: (``sample_many`` never mutates it).
_PROBABILITY_CACHE: dict[tuple[int, float], np.ndarray] = {}


def _zipfian_probabilities(item_count: int, skew: float) -> np.ndarray:
    probabilities = _PROBABILITY_CACHE.get((item_count, skew))
    if probabilities is None:
        ranks = np.arange(1, item_count + 1, dtype=np.float64)
        weights = 1.0 / np.power(ranks, skew)
        probabilities = weights / weights.sum()
        probabilities.flags.writeable = False
        _PROBABILITY_CACHE[(item_count, skew)] = probabilities
    return probabilities


#: Memoised sampling CDFs, shared the same way: a million clients over one
#: (item_count, skew) normalise the cumulative sum once, not once per lane.
_CDF_CACHE: dict[tuple[int, float], np.ndarray] = {}


def _zipfian_sampling_cdf(item_count: int, skew: float) -> np.ndarray:
    cdf = _CDF_CACHE.get((item_count, skew))
    if cdf is None:
        cdf = _zipfian_probabilities(item_count, skew).cumsum()
        cdf /= cdf[-1]
        cdf.flags.writeable = False
        _CDF_CACHE[(item_count, skew)] = cdf
    return cdf


class ZipfianDistribution(KeyDistribution):
    """Finite Zipfian distribution ``P(i) ∝ 1 / (i + 1)^s``.

    Args:
        item_count: number of items (the paper uses 300 objects).
        skew: the Zipf exponent ``s`` (the paper's default workload uses 1.1).
        seed: RNG seed.
    """

    def __init__(self, item_count: int, skew: float = 1.1, seed: int = 0) -> None:
        super().__init__(item_count, seed)
        if skew < 0:
            raise ValueError("skew must be non-negative")
        self._skew = skew
        self._probabilities = _zipfian_probabilities(item_count, skew)
        self._sampling_cdf = _zipfian_sampling_cdf(item_count, skew)

    @property
    def skew(self) -> float:
        """The Zipf exponent."""
        return self._skew

    def probabilities(self) -> np.ndarray:
        return self._probabilities.copy()


class UniformDistribution(KeyDistribution):
    """Every item equally likely (the paper's uniform workload)."""

    def probabilities(self) -> np.ndarray:
        return np.full(self._item_count, 1.0 / self._item_count)

    def sample_many(self, count: int) -> np.ndarray:
        if count < 0:
            raise ValueError("count must be non-negative")
        return self._rng.integers(0, self._item_count, size=count)


def zipfian_cdf(item_count: int, skew: float) -> np.ndarray:
    """Analytic CDF of the finite Zipfian distribution (no sampling).

    Convenience used by the Fig. 9 experiment: the fraction of requests that
    target the ``x`` most popular objects.
    """
    if skew == 0:
        return np.arange(1, item_count + 1) / item_count
    distribution = ZipfianDistribution(item_count=item_count, skew=skew)
    return distribution.cdf()


def top_k_share(item_count: int, skew: float, top_k: int) -> float:
    """Fraction of requests that go to the ``top_k`` most popular objects."""
    if top_k <= 0:
        return 0.0
    cdf = zipfian_cdf(item_count, skew)
    return float(cdf[min(top_k, item_count) - 1])
