"""Workload specifications and request streams (the YCSB stand-in).

A :class:`WorkloadSpec` captures everything the paper's modified YCSB client is
configured with: the object population (300 × 1 MB), the number of read
operations (1,000 per run), and the request distribution (Zipfian with a given
skew, or uniform).  :func:`generate_requests` turns a spec into a deterministic
request stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

import numpy as np

from repro.geo.latency import DEFAULT_OBJECT_SIZE
from repro.workload.zipfian import KeyDistribution, UniformDistribution, ZipfianDistribution

#: Key prefix used for generated objects, matching ``ErasureCodedStore.populate``.
DEFAULT_KEY_PREFIX = "object"


@dataclass(frozen=True, slots=True)
class Request:
    """One client operation.

    Attributes:
        key: object key.
        operation: ``"read"`` (the paper's workloads are read-only) or
            ``"write"`` (used only by the writes extension).
        sequence: position of the request in the stream.
    """

    key: str
    operation: str = "read"
    sequence: int = 0


@dataclass(frozen=True)
class WorkloadSpec:
    """Description of one experiment workload.

    Attributes:
        name: label used in reports ("zipf-1.1", "uniform", ...).
        object_count: number of objects in the store (paper: 300).
        object_size: size of each object in bytes (paper: 1 MB).
        request_count: number of read operations per run (paper: 1,000).
        distribution: ``"zipfian"`` or ``"uniform"``.
        skew: Zipfian exponent (ignored for uniform).
        key_prefix: object key prefix.
        seed: base RNG seed; per-run seeds derive from it.
    """

    name: str = "zipf-1.1"
    object_count: int = 300
    object_size: int = DEFAULT_OBJECT_SIZE
    request_count: int = 1000
    distribution: str = "zipfian"
    skew: float = 1.1
    key_prefix: str = DEFAULT_KEY_PREFIX
    seed: int = 42

    def __post_init__(self) -> None:
        if self.object_count <= 0:
            raise ValueError("object_count must be positive")
        if self.object_size <= 0:
            raise ValueError("object_size must be positive")
        if self.request_count < 0:
            raise ValueError("request_count must be non-negative")
        if self.distribution not in ("zipfian", "uniform"):
            raise ValueError("distribution must be 'zipfian' or 'uniform'")

    def key_for_rank(self, rank: int) -> str:
        """Object key for popularity rank ``rank`` (rank 0 = most popular)."""
        if not 0 <= rank < self.object_count:
            raise ValueError(f"rank {rank} out of range 0..{self.object_count - 1}")
        return f"{self.key_prefix}-{rank}"

    def build_distribution(self, seed: int | None = None) -> KeyDistribution:
        """Instantiate the key distribution with the given (or spec) seed."""
        effective_seed = self.seed if seed is None else seed
        if self.distribution == "uniform":
            return UniformDistribution(self.object_count, seed=effective_seed)
        return ZipfianDistribution(self.object_count, skew=self.skew, seed=effective_seed)

    def with_seed(self, seed: int) -> "WorkloadSpec":
        """Copy of the spec with a different seed (used for repeated runs)."""
        return replace(self, seed=seed)

    def total_data_bytes(self) -> int:
        """Total unencoded bytes in the working set."""
        return self.object_count * self.object_size


#: The paper's default workload (§V-A): 300 × 1 MB objects, 1,000 reads, Zipf 1.1.
PAPER_WORKLOAD = WorkloadSpec()

#: Arrival-process names understood by :class:`ArrivalSpec` and the engine.
ARRIVAL_CLOSED = "closed"
ARRIVAL_POISSON = "poisson"


@dataclass(frozen=True, slots=True)
class ArrivalSpec:
    """How each client paces its requests.

    Attributes:
        process: ``"closed"`` — the next request is issued when the previous
            one completes (YCSB's closed loop, the paper's setting) — or
            ``"poisson"`` — open-loop Poisson arrivals independent of
            completions.
        rate_rps: mean arrival rate per client in requests/second (Poisson
            only).
    """

    process: str = ARRIVAL_CLOSED
    rate_rps: float | None = None

    def __post_init__(self) -> None:
        if self.process not in (ARRIVAL_CLOSED, ARRIVAL_POISSON):
            raise ValueError("process must be 'closed' or 'poisson'")
        if self.process == ARRIVAL_POISSON:
            if self.rate_rps is None or self.rate_rps <= 0:
                raise ValueError("poisson arrivals need a positive rate_rps")
        elif self.rate_rps is not None:
            raise ValueError("closed-loop arrivals take no rate_rps")

    @property
    def is_open_loop(self) -> bool:
        """True for arrival processes decoupled from request completions."""
        return self.process == ARRIVAL_POISSON

    @property
    def mean_interarrival_s(self) -> float:
        """Mean time between arrivals of one client (Poisson only)."""
        if self.rate_rps is None:
            raise ValueError("closed-loop arrivals have no arrival rate")
        return 1.0 / self.rate_rps


def poisson_arrivals(rate_rps: float) -> ArrivalSpec:
    """Open-loop Poisson arrivals at ``rate_rps`` requests/second per client."""
    return ArrivalSpec(process=ARRIVAL_POISSON, rate_rps=rate_rps)


@dataclass(frozen=True)
class MultiRegionWorkload:
    """A deployment-wide workload: one request stream per client per region.

    Every client replays an independent stream drawn from ``base`` (with a
    distinct derived seed), so ``request_count`` is per client and the
    deployment issues ``total_clients * request_count`` reads.

    Attributes:
        base: the per-client workload specification.
        regions: client regions of the deployment.
        clients_per_region: concurrent clients per region.
        arrival: arrival process shared by all clients.
    """

    base: WorkloadSpec
    regions: tuple[str, ...]
    clients_per_region: int = 1
    arrival: ArrivalSpec = ArrivalSpec()

    def __post_init__(self) -> None:
        if not self.regions:
            raise ValueError("at least one region is required")
        if len(set(self.regions)) != len(self.regions):
            raise ValueError("regions must be distinct")
        if self.clients_per_region <= 0:
            raise ValueError("clients_per_region must be positive")

    @property
    def total_clients(self) -> int:
        """Number of concurrent clients across all regions."""
        return len(self.regions) * self.clients_per_region

    @property
    def total_requests(self) -> int:
        """Total reads the deployment issues per run."""
        return self.total_clients * self.base.request_count

    @property
    def name(self) -> str:
        """Report label, e.g. ``"zipf-1.1 x2regions x4clients"``."""
        return (f"{self.base.name} x{len(self.regions)}regions "
                f"x{self.clients_per_region}clients")


def uniform_workload(request_count: int = 1000, object_count: int = 300,
                     object_size: int = DEFAULT_OBJECT_SIZE, seed: int = 42) -> WorkloadSpec:
    """The paper's uniform workload variant (§V-C)."""
    return WorkloadSpec(
        name="uniform",
        object_count=object_count,
        object_size=object_size,
        request_count=request_count,
        distribution="uniform",
        seed=seed,
    )


def zipfian_workload(skew: float, request_count: int = 1000, object_count: int = 300,
                     object_size: int = DEFAULT_OBJECT_SIZE, seed: int = 42) -> WorkloadSpec:
    """A Zipfian workload with the given skew (§V-C sweeps 0.2 – 1.4)."""
    return WorkloadSpec(
        name=f"zipf-{skew:g}",
        object_count=object_count,
        object_size=object_size,
        request_count=request_count,
        distribution="zipfian",
        skew=skew,
        seed=seed,
    )


def generate_request_ranks(spec: WorkloadSpec, seed: int | None = None) -> np.ndarray:
    """Materialise one run's request stream as popularity ranks (no objects).

    This is the struct-of-arrays form of :func:`generate_requests`: the same
    distribution draws, returned as an integer rank array instead of a list of
    :class:`Request` objects.  ``spec.key_for_rank(rank)`` maps each entry back
    to its key; the request's ``sequence`` is its position in the array.  The
    discrete-event engine's lane scheduler consumes this form directly.
    """
    distribution = spec.build_distribution(seed)
    return distribution.sample_many(spec.request_count)


def generate_requests(spec: WorkloadSpec, seed: int | None = None) -> list[Request]:
    """Materialise the full request stream for one run (deterministic)."""
    ranks = generate_request_ranks(spec, seed)
    return [
        Request(key=spec.key_for_rank(int(rank)), operation="read", sequence=index)
        for index, rank in enumerate(ranks)
    ]


def iter_requests(spec: WorkloadSpec, seed: int | None = None) -> Iterator[Request]:
    """Lazily iterate the request stream (memory-friendly for large runs)."""
    distribution = spec.build_distribution(seed)
    for index in range(spec.request_count):
        yield Request(key=spec.key_for_rank(distribution.sample()), operation="read", sequence=index)


def request_frequency(requests: list[Request]) -> dict[str, int]:
    """Access counts per key for a materialised request stream."""
    counts: dict[str, int] = {}
    for request in requests:
        counts[request.key] = counts.get(request.key, 0) + 1
    return counts
