"""Workload substrate: YCSB-style request generation (read-only, Zipfian/uniform)."""

from repro.workload.workload import (
    DEFAULT_KEY_PREFIX,
    PAPER_WORKLOAD,
    Request,
    WorkloadSpec,
    generate_requests,
    iter_requests,
    request_frequency,
    uniform_workload,
    zipfian_workload,
)
from repro.workload.zipfian import (
    KeyDistribution,
    UniformDistribution,
    ZipfianDistribution,
    top_k_share,
    zipfian_cdf,
)

__all__ = [
    "DEFAULT_KEY_PREFIX",
    "KeyDistribution",
    "PAPER_WORKLOAD",
    "Request",
    "UniformDistribution",
    "WorkloadSpec",
    "ZipfianDistribution",
    "generate_requests",
    "iter_requests",
    "request_frequency",
    "top_k_share",
    "uniform_workload",
    "zipfian_cdf",
    "zipfian_workload",
]
