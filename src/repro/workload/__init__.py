"""Workload substrate: YCSB-style request generation (read-only, Zipfian/uniform)."""

from repro.workload.workload import (
    ARRIVAL_CLOSED,
    ARRIVAL_POISSON,
    DEFAULT_KEY_PREFIX,
    PAPER_WORKLOAD,
    ArrivalSpec,
    MultiRegionWorkload,
    Request,
    WorkloadSpec,
    generate_requests,
    iter_requests,
    poisson_arrivals,
    request_frequency,
    uniform_workload,
    zipfian_workload,
)
from repro.workload.zipfian import (
    KeyDistribution,
    UniformDistribution,
    ZipfianDistribution,
    top_k_share,
    zipfian_cdf,
)

__all__ = [
    "ARRIVAL_CLOSED",
    "ARRIVAL_POISSON",
    "ArrivalSpec",
    "DEFAULT_KEY_PREFIX",
    "KeyDistribution",
    "MultiRegionWorkload",
    "PAPER_WORKLOAD",
    "Request",
    "UniformDistribution",
    "WorkloadSpec",
    "ZipfianDistribution",
    "generate_requests",
    "iter_requests",
    "poisson_arrivals",
    "request_frequency",
    "top_k_share",
    "uniform_workload",
    "zipfian_cdf",
    "zipfian_workload",
]
