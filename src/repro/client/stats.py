"""Client-side measurement: per-read results and aggregated statistics.

The modified YCSB client of the paper measures the latency of reading a *full
object* (not individual chunks) and classifies cache usage into total hits,
partial hits and misses (§V-A, §V-B).  :class:`LatencyStats` aggregates those
measurements into the quantities the figures report: average latency and hit
ratio.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum


class HitType(str, Enum):
    """Cache outcome of one object read (Fig. 7's classification)."""

    FULL = "full"          #: every chunk came from the local cache
    PARTIAL = "partial"    #: some chunks came from the cache, some from the backend
    MISS = "miss"          #: every chunk came from the backend

    @property
    def is_hit(self) -> bool:
        """The paper counts both full and partial hits as hits."""
        return self is not HitType.MISS


@dataclass(frozen=True, slots=True)
class ReadResult:
    """Outcome of one object read.

    Attributes:
        key: object read.
        latency_ms: end-to-end latency of the read.
        hit_type: cache classification.
        chunks_from_cache: number of chunks served by the local cache.
        chunks_from_backend: number of chunks fetched from backend regions.
        backend_regions: distinct backend regions contacted.
        started_at_s: simulated time at which the read started.
    """

    key: str
    latency_ms: float
    hit_type: HitType
    chunks_from_cache: int
    chunks_from_backend: int
    backend_regions: tuple[str, ...] = ()
    started_at_s: float = 0.0


@dataclass
class LatencyStats:
    """Streaming aggregation of read results."""

    latencies_ms: list[float] = field(default_factory=list)
    full_hits: int = 0
    partial_hits: int = 0
    misses: int = 0
    cache_chunks_total: int = 0
    backend_chunks_total: int = 0

    def record(self, result: ReadResult) -> None:
        """Add one read result."""
        self.latencies_ms.append(result.latency_ms)
        if result.hit_type is HitType.FULL:
            self.full_hits += 1
        elif result.hit_type is HitType.PARTIAL:
            self.partial_hits += 1
        else:
            self.misses += 1
        self.cache_chunks_total += result.chunks_from_cache
        self.backend_chunks_total += result.chunks_from_backend

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        """Number of reads recorded."""
        return len(self.latencies_ms)

    @property
    def mean_latency_ms(self) -> float:
        """Average read latency (0 when empty) — the y-axis of Figs. 2, 6, 8."""
        return sum(self.latencies_ms) / self.count if self.count else 0.0

    @property
    def hit_ratio(self) -> float:
        """(full + partial hits) / reads — the y-axis of Fig. 7."""
        return (self.full_hits + self.partial_hits) / self.count if self.count else 0.0

    @property
    def full_hit_ratio(self) -> float:
        """full hits / reads."""
        return self.full_hits / self.count if self.count else 0.0

    @property
    def partial_hit_ratio(self) -> float:
        """partial hits / reads."""
        return self.partial_hits / self.count if self.count else 0.0

    def percentile(self, percentile: float) -> float:
        """Latency percentile in [0, 100] using nearest-rank interpolation."""
        if not self.latencies_ms:
            return 0.0
        if not 0.0 <= percentile <= 100.0:
            raise ValueError("percentile must be between 0 and 100")
        ordered = sorted(self.latencies_ms)
        rank = max(0, math.ceil(percentile / 100.0 * len(ordered)) - 1)
        return ordered[rank]

    @property
    def median_latency_ms(self) -> float:
        """50th percentile latency."""
        return self.percentile(50.0)

    @property
    def p99_latency_ms(self) -> float:
        """99th percentile latency."""
        return self.percentile(99.0)

    def summary(self) -> dict[str, float]:
        """Dictionary summary used by the experiment reports."""
        return {
            "reads": float(self.count),
            "mean_latency_ms": self.mean_latency_ms,
            "median_latency_ms": self.median_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "hit_ratio": self.hit_ratio,
            "full_hit_ratio": self.full_hit_ratio,
            "partial_hit_ratio": self.partial_hit_ratio,
            "cache_chunks": float(self.cache_chunks_total),
            "backend_chunks": float(self.backend_chunks_total),
        }

    def merge(self, other: "LatencyStats") -> "LatencyStats":
        """Combine two stats objects (e.g. several clients of one run)."""
        merged = LatencyStats()
        merged.latencies_ms = self.latencies_ms + other.latencies_ms
        merged.full_hits = self.full_hits + other.full_hits
        merged.partial_hits = self.partial_hits + other.partial_hits
        merged.misses = self.misses + other.misses
        merged.cache_chunks_total = self.cache_chunks_total + other.cache_chunks_total
        merged.backend_chunks_total = self.backend_chunks_total + other.backend_chunks_total
        return merged
