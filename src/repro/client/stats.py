"""Client-side measurement: per-read results and aggregated statistics.

The modified YCSB client of the paper measures the latency of reading a *full
object* (not individual chunks) and classifies cache usage into total hits,
partial hits and misses (§V-A, §V-B).  :class:`LatencyStats` aggregates those
measurements into the quantities the figures report: average latency and hit
ratio.

The aggregator is on the simulation driver's per-request path, so it records
into a preallocated, geometrically grown NumPy buffer instead of appending to
a Python list — the request replay loop performs no per-request allocations
beyond the :class:`ReadResult` itself.
"""

from __future__ import annotations

import math
from enum import Enum
from typing import Iterable

import numpy as np


class HitType(str, Enum):
    """Cache outcome of one object read (Fig. 7's classification)."""

    FULL = "full"          #: every chunk came from the local cache
    PARTIAL = "partial"    #: some chunks came from the cache, some from the backend
    MISS = "miss"          #: every chunk came from the backend

    @property
    def is_hit(self) -> bool:
        """The paper counts both full and partial hits as hits."""
        return self is not HitType.MISS


class ReadResult:
    """Outcome of one object read.

    A slotted value class rather than a dataclass: one instance is built per
    simulated read, and the generated ``__init__`` of a frozen dataclass
    (``object.__setattr__`` per field) measured ~3× slower on that hot path.
    Field layout, keyword construction, equality, hashing and repr behave
    like the frozen dataclass it replaces.

    Attributes:
        key: object read.
        latency_ms: end-to-end latency of the read.
        hit_type: cache classification (local cache only; neighbour-cache
            reads do not count as hits).
        chunks_from_cache: number of chunks served by the local cache.
        chunks_from_backend: number of chunks fetched from backend regions.
        chunks_from_neighbors: number of chunks fetched from a collaborating
            neighbour region's cache (§VI deployments only).
        backend_regions: distinct backend regions contacted.
        started_at_s: simulated time at which the read started.
    """

    __slots__ = ("key", "latency_ms", "hit_type", "chunks_from_cache",
                 "chunks_from_backend", "chunks_from_neighbors",
                 "backend_regions", "started_at_s")

    def __init__(self, key: str, latency_ms: float, hit_type: HitType,
                 chunks_from_cache: int, chunks_from_backend: int,
                 backend_regions: tuple[str, ...] = (),
                 started_at_s: float = 0.0,
                 chunks_from_neighbors: int = 0) -> None:
        self.key = key
        self.latency_ms = latency_ms
        self.hit_type = hit_type
        self.chunks_from_cache = chunks_from_cache
        self.chunks_from_backend = chunks_from_backend
        self.chunks_from_neighbors = chunks_from_neighbors
        self.backend_regions = backend_regions
        self.started_at_s = started_at_s

    def _astuple(self) -> tuple:
        return (self.key, self.latency_ms, self.hit_type, self.chunks_from_cache,
                self.chunks_from_backend, self.chunks_from_neighbors,
                self.backend_regions, self.started_at_s)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReadResult):
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (f"ReadResult(key={self.key!r}, latency_ms={self.latency_ms!r}, "
                f"hit_type={self.hit_type!r}, chunks_from_cache={self.chunks_from_cache!r}, "
                f"chunks_from_backend={self.chunks_from_backend!r}, "
                f"chunks_from_neighbors={self.chunks_from_neighbors!r}, "
                f"backend_regions={self.backend_regions!r}, "
                f"started_at_s={self.started_at_s!r})")

    def __getstate__(self) -> tuple:
        return self._astuple()

    def __setstate__(self, state: tuple) -> None:
        (self.key, self.latency_ms, self.hit_type, self.chunks_from_cache,
         self.chunks_from_backend, self.chunks_from_neighbors,
         self.backend_regions, self.started_at_s) = state


#: Initial capacity of the latency buffer (doubles as it fills).
_INITIAL_BUFFER = 1024


class LatencyStats:
    """Streaming aggregation of read results.

    Latencies live in a preallocated ``float64`` buffer that doubles when
    full; counters are plain ints.  :meth:`record` therefore allocates only
    on the (amortized O(1)) growth path.
    """

    __slots__ = ("_buffer", "_count", "full_hits", "partial_hits", "misses",
                 "cache_chunks_total", "backend_chunks_total",
                 "neighbor_chunks_total")

    def __init__(self, capacity: int = _INITIAL_BUFFER) -> None:
        self._buffer = np.empty(max(int(capacity), 1), dtype=np.float64)
        self._count = 0
        self.full_hits = 0
        self.partial_hits = 0
        self.misses = 0
        self.cache_chunks_total = 0
        self.backend_chunks_total = 0
        self.neighbor_chunks_total = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record(self, result: ReadResult) -> None:
        """Add one read result."""
        self.record_read(result.latency_ms, result.hit_type,
                         result.chunks_from_cache, result.chunks_from_backend,
                         result.chunks_from_neighbors)

    def record_read(self, latency_ms: float, hit_type: HitType,
                    chunks_from_cache: int = 0, chunks_from_backend: int = 0,
                    chunks_from_neighbors: int = 0) -> None:
        """Scalar fast path: add one read without a :class:`ReadResult`."""
        count = self._count
        buffer = self._buffer
        if count == buffer.shape[0]:
            buffer = np.empty(count * 2, dtype=np.float64)
            buffer[:count] = self._buffer
            self._buffer = buffer
        buffer[count] = latency_ms
        self._count = count + 1
        if hit_type is HitType.FULL:
            self.full_hits += 1
        elif hit_type is HitType.PARTIAL:
            self.partial_hits += 1
        else:
            self.misses += 1
        self.cache_chunks_total += chunks_from_cache
        self.backend_chunks_total += chunks_from_backend
        self.neighbor_chunks_total += chunks_from_neighbors

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    @property
    def latencies_ms(self) -> list[float]:
        """Recorded latencies, oldest first (materialized as a list)."""
        return self._buffer[: self._count].tolist()

    def latencies_array(self) -> np.ndarray:
        """Read-only view of the recorded latencies (no copy)."""
        view = self._buffer[: self._count]
        view.flags.writeable = False
        return view

    @property
    def count(self) -> int:
        """Number of reads recorded."""
        return self._count

    @property
    def mean_latency_ms(self) -> float:
        """Average read latency (0 when empty) — the y-axis of Figs. 2, 6, 8."""
        return float(self._buffer[: self._count].mean()) if self._count else 0.0

    @property
    def hit_ratio(self) -> float:
        """(full + partial hits) / reads — the y-axis of Fig. 7."""
        return (self.full_hits + self.partial_hits) / self._count if self._count else 0.0

    @property
    def full_hit_ratio(self) -> float:
        """full hits / reads."""
        return self.full_hits / self._count if self._count else 0.0

    @property
    def partial_hit_ratio(self) -> float:
        """partial hits / reads."""
        return self.partial_hits / self._count if self._count else 0.0

    def percentile(self, percentile: float) -> float:
        """Latency percentile in [0, 100] using nearest-rank interpolation."""
        if not self._count:
            return 0.0
        if not 0.0 <= percentile <= 100.0:
            raise ValueError("percentile must be between 0 and 100")
        ordered = np.sort(self._buffer[: self._count])
        rank = max(0, math.ceil(percentile / 100.0 * self._count) - 1)
        return float(ordered[rank])

    @property
    def median_latency_ms(self) -> float:
        """50th percentile latency."""
        return self.percentile(50.0)

    @property
    def p50_latency_ms(self) -> float:
        """50th percentile latency (alias of :attr:`median_latency_ms`)."""
        return self.median_latency_ms

    @property
    def p95_latency_ms(self) -> float:
        """95th percentile latency."""
        return self.percentile(95.0)

    @property
    def p99_latency_ms(self) -> float:
        """99th percentile latency."""
        return self.percentile(99.0)

    def throughput_rps(self, duration_s: float) -> float:
        """Requests per second of simulated time (0 for an empty duration)."""
        if duration_s <= 0:
            return 0.0
        return self._count / duration_s

    def summary(self) -> dict[str, float]:
        """Dictionary summary used by the experiment reports."""
        return {
            "reads": float(self.count),
            "mean_latency_ms": self.mean_latency_ms,
            "median_latency_ms": self.median_latency_ms,
            "p95_latency_ms": self.p95_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "hit_ratio": self.hit_ratio,
            "full_hit_ratio": self.full_hit_ratio,
            "partial_hit_ratio": self.partial_hit_ratio,
            "cache_chunks": float(self.cache_chunks_total),
            "backend_chunks": float(self.backend_chunks_total),
            "neighbor_chunks": float(self.neighbor_chunks_total),
        }

    @classmethod
    def merge_all(cls, stats: "Iterable[LatencyStats]") -> "LatencyStats":
        """Merge any number of stats objects in one pass (single allocation).

        The deployment-wide aggregates of multi-region engine runs use this
        instead of chaining pairwise :meth:`merge` calls, which would copy the
        accumulated buffer once per region.
        """
        parts = list(stats)
        total = sum(part._count for part in parts)
        merged = cls(capacity=max(total, 1))
        offset = 0
        for part in parts:
            count = part._count
            merged._buffer[offset: offset + count] = part._buffer[:count]
            offset += count
            merged.full_hits += part.full_hits
            merged.partial_hits += part.partial_hits
            merged.misses += part.misses
            merged.cache_chunks_total += part.cache_chunks_total
            merged.backend_chunks_total += part.backend_chunks_total
            merged.neighbor_chunks_total += part.neighbor_chunks_total
        merged._count = total
        return merged

    def merge(self, other: "LatencyStats") -> "LatencyStats":
        """Combine two stats objects (e.g. several clients of one run)."""
        total = self._count + other._count
        merged = LatencyStats(capacity=max(total, 1))
        merged._buffer[: self._count] = self._buffer[: self._count]
        merged._buffer[self._count: total] = other._buffer[: other._count]
        merged._count = total
        merged.full_hits = self.full_hits + other.full_hits
        merged.partial_hits = self.partial_hits + other.partial_hits
        merged.misses = self.misses + other.misses
        merged.cache_chunks_total = self.cache_chunks_total + other.cache_chunks_total
        merged.backend_chunks_total = self.backend_chunks_total + other.backend_chunks_total
        merged.neighbor_chunks_total = self.neighbor_chunks_total + other.neighbor_chunks_total
        return merged
