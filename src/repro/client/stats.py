"""Client-side measurement: per-read results and aggregated statistics.

The modified YCSB client of the paper measures the latency of reading a *full
object* (not individual chunks) and classifies cache usage into total hits,
partial hits and misses (§V-A, §V-B).  :class:`LatencyStats` aggregates those
measurements into the quantities the figures report: average latency and hit
ratio.

The aggregator is on the simulation driver's per-request path, so it records
into a preallocated, geometrically grown NumPy buffer instead of appending to
a Python list — the request replay loop performs no per-request allocations
beyond the :class:`ReadResult` itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

import numpy as np


class HitType(str, Enum):
    """Cache outcome of one object read (Fig. 7's classification)."""

    FULL = "full"          #: every chunk came from the local cache
    PARTIAL = "partial"    #: some chunks came from the cache, some from the backend
    MISS = "miss"          #: every chunk came from the backend

    @property
    def is_hit(self) -> bool:
        """The paper counts both full and partial hits as hits."""
        return self is not HitType.MISS


class ReadResult:
    """Outcome of one object read.

    A slotted value class rather than a dataclass: one instance is built per
    simulated read, and the generated ``__init__`` of a frozen dataclass
    (``object.__setattr__`` per field) measured ~3× slower on that hot path.
    Field layout, keyword construction, equality, hashing and repr behave
    like the frozen dataclass it replaces.

    Attributes:
        key: object read.
        latency_ms: end-to-end latency of the read.
        hit_type: cache classification (local cache only; neighbour-cache
            reads do not count as hits).
        chunks_from_cache: number of chunks served by the local cache.
        chunks_from_backend: number of chunks fetched from backend regions.
        chunks_from_neighbors: number of chunks fetched from a collaborating
            neighbour region's cache (§VI deployments only).
        backend_regions: distinct backend regions contacted.
        started_at_s: simulated time at which the read started.
        degraded: the read succeeded but had to deviate from its failure-free
            plan because of an active fault (cache skipped during an AZ
            failure, or backend fetches re-planned around a region outage).
        failed: fewer than ``k`` chunks were reachable anywhere — the object
            could not be reconstructed (an *unavailable read*).
        retries: timed-out remote chunk fetches that were retried under the
            read's retry budget (0 when resilience is off).
        hedged: a speculative extra-chunk fetch was launched because the
            slowest chunk exceeded its link's quantile-tracked deadline.
        hedge_won: the hedged fetch finished before the straggler it raced
            (implies ``hedged``).
    """

    __slots__ = ("key", "latency_ms", "hit_type", "chunks_from_cache",
                 "chunks_from_backend", "chunks_from_neighbors",
                 "backend_regions", "started_at_s", "degraded", "failed",
                 "retries", "hedged", "hedge_won")

    def __init__(self, key: str, latency_ms: float, hit_type: HitType,
                 chunks_from_cache: int, chunks_from_backend: int,
                 backend_regions: tuple[str, ...] = (),
                 started_at_s: float = 0.0,
                 chunks_from_neighbors: int = 0,
                 degraded: bool = False,
                 failed: bool = False,
                 retries: int = 0,
                 hedged: bool = False,
                 hedge_won: bool = False) -> None:
        self.key = key
        self.latency_ms = latency_ms
        self.hit_type = hit_type
        self.chunks_from_cache = chunks_from_cache
        self.chunks_from_backend = chunks_from_backend
        self.chunks_from_neighbors = chunks_from_neighbors
        self.backend_regions = backend_regions
        self.started_at_s = started_at_s
        self.degraded = degraded
        self.failed = failed
        self.retries = retries
        self.hedged = hedged
        self.hedge_won = hedge_won

    def _astuple(self) -> tuple:
        return (self.key, self.latency_ms, self.hit_type, self.chunks_from_cache,
                self.chunks_from_backend, self.chunks_from_neighbors,
                self.backend_regions, self.started_at_s, self.degraded, self.failed,
                self.retries, self.hedged, self.hedge_won)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReadResult):
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (f"ReadResult(key={self.key!r}, latency_ms={self.latency_ms!r}, "
                f"hit_type={self.hit_type!r}, chunks_from_cache={self.chunks_from_cache!r}, "
                f"chunks_from_backend={self.chunks_from_backend!r}, "
                f"chunks_from_neighbors={self.chunks_from_neighbors!r}, "
                f"backend_regions={self.backend_regions!r}, "
                f"started_at_s={self.started_at_s!r}, "
                f"degraded={self.degraded!r}, failed={self.failed!r}, "
                f"retries={self.retries!r}, hedged={self.hedged!r}, "
                f"hedge_won={self.hedge_won!r})")

    def __getstate__(self) -> tuple:
        return self._astuple()

    def __setstate__(self, state: tuple) -> None:
        (self.key, self.latency_ms, self.hit_type, self.chunks_from_cache,
         self.chunks_from_backend, self.chunks_from_neighbors,
         self.backend_regions, self.started_at_s, self.degraded,
         self.failed, self.retries, self.hedged, self.hedge_won) = state


#: Initial capacity of the latency buffer (doubles as it fills).
_INITIAL_BUFFER = 1024


class LatencyStats:
    """Streaming aggregation of read results.

    Latencies live in a preallocated ``float64`` buffer that doubles when
    full; counters are plain ints.  :meth:`record` therefore allocates only
    on the (amortized O(1)) growth path.
    """

    __slots__ = ("_buffer", "_count", "full_hits", "partial_hits", "misses",
                 "cache_chunks_total", "backend_chunks_total",
                 "neighbor_chunks_total", "degraded_reads", "unavailable_reads",
                 "retries_total", "hedged_reads", "hedge_wins")

    def __init__(self, capacity: int = _INITIAL_BUFFER) -> None:
        self._buffer = np.empty(max(int(capacity), 1), dtype=np.float64)
        self._count = 0
        self.full_hits = 0
        self.partial_hits = 0
        self.misses = 0
        self.cache_chunks_total = 0
        self.backend_chunks_total = 0
        self.neighbor_chunks_total = 0
        self.degraded_reads = 0
        self.unavailable_reads = 0
        self.retries_total = 0
        self.hedged_reads = 0
        self.hedge_wins = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record(self, result: ReadResult) -> None:
        """Add one read result."""
        self.record_read(result.latency_ms, result.hit_type,
                         result.chunks_from_cache, result.chunks_from_backend,
                         result.chunks_from_neighbors, result.degraded,
                         result.failed, result.retries, result.hedged,
                         result.hedge_won)

    def record_read(self, latency_ms: float, hit_type: HitType,
                    chunks_from_cache: int = 0, chunks_from_backend: int = 0,
                    chunks_from_neighbors: int = 0, degraded: bool = False,
                    failed: bool = False, retries: int = 0,
                    hedged: bool = False, hedge_won: bool = False) -> None:
        """Scalar fast path: add one read without a :class:`ReadResult`.

        A failed (unavailable) read carries no meaningful latency or hit
        classification — the object was never reconstructed — so it only
        bumps :attr:`unavailable_reads` and stays out of every latency and
        hit-ratio aggregate (resilience never runs on a failed read, so its
        counters stay untouched too).
        """
        if failed:
            self.unavailable_reads += 1
            return
        if degraded:
            self.degraded_reads += 1
        if retries:
            self.retries_total += retries
        if hedged:
            self.hedged_reads += 1
            if hedge_won:
                self.hedge_wins += 1
        count = self._count
        buffer = self._buffer
        if count == buffer.shape[0]:
            buffer = np.empty(count * 2, dtype=np.float64)
            buffer[:count] = self._buffer
            self._buffer = buffer
        buffer[count] = latency_ms
        self._count = count + 1
        if hit_type is HitType.FULL:
            self.full_hits += 1
        elif hit_type is HitType.PARTIAL:
            self.partial_hits += 1
        else:
            self.misses += 1
        self.cache_chunks_total += chunks_from_cache
        self.backend_chunks_total += chunks_from_backend
        self.neighbor_chunks_total += chunks_from_neighbors

    def record_miss_block(self, latencies_ms, chunks_from_backend_each: int) -> None:
        """Batched twin of :meth:`record_read` for a block of uniform misses.

        Equivalent to one ``record_read(latency, HitType.MISS,
        chunks_from_backend=chunks_from_backend_each)`` call per entry, in
        order.  The engine's stateless wave dispatch lands whole blocks of
        backend misses whose only varying field is the latency, so the
        buffer append and every counter bump collapse into one call.
        """
        block = np.asarray(latencies_ms, dtype=np.float64)
        size = block.shape[0]
        if size == 0:
            return
        count = self._count
        buffer = self._buffer
        needed = count + size
        if needed > buffer.shape[0]:
            capacity = buffer.shape[0]
            while capacity < needed:
                capacity *= 2
            buffer = np.empty(capacity, dtype=np.float64)
            buffer[:count] = self._buffer
            self._buffer = buffer
        buffer[count:needed] = block
        self._count = needed
        self.misses += size
        self.backend_chunks_total += chunks_from_backend_each * size

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    @property
    def latencies_ms(self) -> list[float]:
        """Recorded latencies, oldest first (materialized as a list)."""
        return self._buffer[: self._count].tolist()

    def latencies_array(self) -> np.ndarray:
        """Read-only view of the recorded latencies (no copy)."""
        view = self._buffer[: self._count]
        view.flags.writeable = False
        return view

    @property
    def count(self) -> int:
        """Number of reads recorded."""
        return self._count

    @property
    def mean_latency_ms(self) -> float:
        """Average read latency (0 when empty) — the y-axis of Figs. 2, 6, 8."""
        return float(self._buffer[: self._count].mean()) if self._count else 0.0

    @property
    def hit_ratio(self) -> float:
        """(full + partial hits) / reads — the y-axis of Fig. 7."""
        return (self.full_hits + self.partial_hits) / self._count if self._count else 0.0

    @property
    def full_hit_ratio(self) -> float:
        """full hits / reads."""
        return self.full_hits / self._count if self._count else 0.0

    @property
    def partial_hit_ratio(self) -> float:
        """partial hits / reads."""
        return self.partial_hits / self._count if self._count else 0.0

    def percentile(self, percentile: float) -> float:
        """Latency percentile in [0, 100] using nearest-rank interpolation."""
        if not self._count:
            return 0.0
        if not 0.0 <= percentile <= 100.0:
            raise ValueError("percentile must be between 0 and 100")
        ordered = np.sort(self._buffer[: self._count])
        rank = max(0, math.ceil(percentile / 100.0 * self._count) - 1)
        return float(ordered[rank])

    @property
    def median_latency_ms(self) -> float:
        """50th percentile latency."""
        return self.percentile(50.0)

    @property
    def p50_latency_ms(self) -> float:
        """50th percentile latency (alias of :attr:`median_latency_ms`)."""
        return self.median_latency_ms

    @property
    def p95_latency_ms(self) -> float:
        """95th percentile latency."""
        return self.percentile(95.0)

    @property
    def p99_latency_ms(self) -> float:
        """99th percentile latency."""
        return self.percentile(99.0)

    def throughput_rps(self, duration_s: float) -> float:
        """Requests per second of simulated time (0 for an empty duration)."""
        if duration_s <= 0:
            return 0.0
        return self._count / duration_s

    def summary(self) -> dict[str, float]:
        """Dictionary summary used by the experiment reports."""
        return {
            "reads": float(self.count),
            "mean_latency_ms": self.mean_latency_ms,
            "median_latency_ms": self.median_latency_ms,
            "p95_latency_ms": self.p95_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "hit_ratio": self.hit_ratio,
            "full_hit_ratio": self.full_hit_ratio,
            "partial_hit_ratio": self.partial_hit_ratio,
            "cache_chunks": float(self.cache_chunks_total),
            "backend_chunks": float(self.backend_chunks_total),
            "neighbor_chunks": float(self.neighbor_chunks_total),
            "degraded_reads": float(self.degraded_reads),
            "unavailable_reads": float(self.unavailable_reads),
            "retries_total": float(self.retries_total),
            "hedged_reads": float(self.hedged_reads),
            "hedge_wins": float(self.hedge_wins),
        }

    @classmethod
    def merge_all(cls, stats: "Iterable[LatencyStats]") -> "LatencyStats":
        """Merge any number of stats objects in one pass (single allocation).

        The deployment-wide aggregates of multi-region engine runs use this
        instead of chaining pairwise :meth:`merge` calls, which would copy the
        accumulated buffer once per region.
        """
        parts = list(stats)
        total = sum(part._count for part in parts)
        merged = cls(capacity=max(total, 1))
        offset = 0
        for part in parts:
            count = part._count
            merged._buffer[offset: offset + count] = part._buffer[:count]
            offset += count
            merged.full_hits += part.full_hits
            merged.partial_hits += part.partial_hits
            merged.misses += part.misses
            merged.cache_chunks_total += part.cache_chunks_total
            merged.backend_chunks_total += part.backend_chunks_total
            merged.neighbor_chunks_total += part.neighbor_chunks_total
            merged.degraded_reads += part.degraded_reads
            merged.unavailable_reads += part.unavailable_reads
            merged.retries_total += part.retries_total
            merged.hedged_reads += part.hedged_reads
            merged.hedge_wins += part.hedge_wins
        merged._count = total
        return merged

    def merge(self, other: "LatencyStats") -> "LatencyStats":
        """Combine two stats objects (e.g. several clients of one run)."""
        total = self._count + other._count
        merged = LatencyStats(capacity=max(total, 1))
        merged._buffer[: self._count] = self._buffer[: self._count]
        merged._buffer[self._count: total] = other._buffer[: other._count]
        merged._count = total
        merged.full_hits = self.full_hits + other.full_hits
        merged.partial_hits = self.partial_hits + other.partial_hits
        merged.misses = self.misses + other.misses
        merged.cache_chunks_total = self.cache_chunks_total + other.cache_chunks_total
        merged.backend_chunks_total = self.backend_chunks_total + other.backend_chunks_total
        merged.neighbor_chunks_total = self.neighbor_chunks_total + other.neighbor_chunks_total
        merged.degraded_reads = self.degraded_reads + other.degraded_reads
        merged.unavailable_reads = self.unavailable_reads + other.unavailable_reads
        merged.retries_total = self.retries_total + other.retries_total
        merged.hedged_reads = self.hedged_reads + other.hedged_reads
        merged.hedge_wins = self.hedge_wins + other.hedge_wins
        return merged


# ---------------------------------------------------------------------- #
# Recovery-aware reporting: windowed tail-latency time series
# ---------------------------------------------------------------------- #
@dataclass(frozen=True, slots=True)
class LatencyWindow:
    """Aggregates of the reads that *started* in one time window.

    Attributes:
        start_s: inclusive window start (simulated seconds).
        end_s: exclusive window end.
        reads: successful reads in the window (failed reads excluded).
        mean_ms / p50_ms / p99_ms: latency aggregates of those reads
            (0.0 for an empty window).
        degraded: degraded reads in the window.
        unavailable: failed (unavailable) reads in the window.
    """

    start_s: float
    end_s: float
    reads: int
    mean_ms: float
    p50_ms: float
    p99_ms: float
    degraded: int
    unavailable: int


def _nearest_rank(ordered: np.ndarray, percentile: float) -> float:
    rank = max(0, math.ceil(percentile / 100.0 * ordered.shape[0]) - 1)
    return float(ordered[rank])


def windowed_latency_series(results: Sequence[ReadResult], window_s: float,
                            start_s: float = 0.0,
                            end_s: float | None = None) -> list[LatencyWindow]:
    """Bucket read results into fixed windows of simulated time.

    This is the recovery-aware view of a faulted run: the per-window p99
    spikes while a disturbance is active and settles back once caches are
    rebuilt, making reconfiguration lag visible where a run-wide percentile
    would smear it out.  Reads are assigned to the window containing their
    ``started_at_s``; percentiles use the same nearest-rank rule as
    :meth:`LatencyStats.percentile`.  Empty windows are kept (zero
    aggregates) so the series is contiguous and plottable as-is.

    Args:
        results: read results from any number of regions/clients (order
            irrelevant).
        window_s: window width in simulated seconds (must be positive).
        start_s: start of the first window.
        end_s: coverage horizon; defaults to the latest read start.  The last
            window is extended/truncated on a whole-window grid so every read
            in ``[start_s, end_s]`` lands in some window.
    """
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    if end_s is None:
        end_s = max((result.started_at_s for result in results), default=start_s)
    if end_s < start_s:
        raise ValueError("end_s must not precede start_s")
    window_count = max(1, math.ceil((end_s - start_s) / window_s - 1e-9))
    buckets: list[list[float]] = [[] for _ in range(window_count)]
    degraded = [0] * window_count
    unavailable = [0] * window_count
    for result in results:
        index = int((result.started_at_s - start_s) / window_s)
        if index < 0 or index >= window_count:
            continue
        if result.failed:
            unavailable[index] += 1
            continue
        buckets[index].append(result.latency_ms)
        if result.degraded:
            degraded[index] += 1
    series: list[LatencyWindow] = []
    for index in range(window_count):
        latencies = buckets[index]
        if latencies:
            ordered = np.sort(np.asarray(latencies, dtype=np.float64))
            mean_ms = float(ordered.mean())
            p50_ms = _nearest_rank(ordered, 50.0)
            p99_ms = _nearest_rank(ordered, 99.0)
        else:
            mean_ms = p50_ms = p99_ms = 0.0
        series.append(LatencyWindow(
            start_s=start_s + index * window_s,
            end_s=start_s + (index + 1) * window_s,
            reads=len(latencies),
            mean_ms=mean_ms,
            p50_ms=p50_ms,
            p99_ms=p99_ms,
            degraded=degraded[index],
            unavailable=unavailable[index],
        ))
    return series
