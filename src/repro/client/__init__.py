"""Client substrate: YCSB-style read strategies and latency statistics."""

from repro.client.stats import HitType, LatencyStats, ReadResult
from repro.client.strategies import (
    AgarReadStrategy,
    BackendReadStrategy,
    ClientConfig,
    FixedChunkCachingStrategy,
    PeriodicLFUStrategy,
    ReadStrategy,
    make_strategy,
)

__all__ = [
    "AgarReadStrategy",
    "BackendReadStrategy",
    "ClientConfig",
    "FixedChunkCachingStrategy",
    "HitType",
    "LatencyStats",
    "PeriodicLFUStrategy",
    "ReadResult",
    "ReadStrategy",
    "make_strategy",
]
