"""Client read strategies: Backend, LRU-c, LFU-c and Agar (paper §V-A).

The paper evaluates four customised YCSB clients that differ only in how they
locate the ``k`` chunks needed to reconstruct an object:

* **Backend** — read every chunk from the (possibly remote) backend buckets.
* **LRU-c / LFU-c** — keep a fixed number ``c`` of chunks per object in the
  local cache (the ``c`` most distant ones), managed by the LRU or LFU
  eviction policy.
* **Agar** — ask the local Agar node for hints and use the chunks its current
  configuration keeps in the cache.

All strategies share the same latency model: chunks are requested in parallel,
so a read costs a fixed client overhead plus the slowest chunk fetch plus the
decoding time (§IV "assumes the client requests blocks in parallel").  Cache
writes happen off the critical path and are not charged (§V-A).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

from repro.backend.object_store import ErasureCodedStore
from repro.cache.base import CacheSnapshot
from repro.cache.chunk_cache import ChunkCache
from repro.cache.policies import LFUEvictionPolicy, LRUEvictionPolicy
from repro.client.stats import HitType, ReadResult
from repro.core.agar_node import AgarNode, AgarNodeConfig
from repro.core.options import PlacedChunk, needed_chunks
from repro.erasure.chunk import Chunk, ChunkId


@dataclass(frozen=True)
class ClientConfig:
    """Client-side latency constants.

    Attributes:
        overhead_ms: fixed per-read client/request overhead (connection setup,
            scheduling of the parallel chunk requests).
        include_decode_cost: charge the Reed-Solomon decode estimate to reads.
    """

    overhead_ms: float = 40.0
    include_decode_cost: bool = True


class ReadStrategy(ABC):
    """Base class for the four read strategies.

    Strategies are re-entrant with respect to interleaved clients: one
    instance serves every client of its region, so :meth:`read` must only
    touch state that is safe under arbitrary request interleavings.  The
    per-key plan caches (``_needed_cache`` / ``_nearest_cache``) qualify —
    they memoise pure functions of the key — and cache writes happen
    atomically within one read event, so the discrete-event engine can
    interleave any number of clients through one strategy.

    Args:
        store: the erasure-coded object store.
        client_region: region the client (and its local cache) runs in.
        config: client latency constants.
    """

    name: str = "base"

    def __init__(self, store: ErasureCodedStore, client_region: str,
                 config: ClientConfig | None = None) -> None:
        self._store = store
        self._region = store.topology.validate_region(client_region)
        self._config = config or ClientConfig()
        self._latency = store.topology.latency
        self._expected_latencies = store.topology.expected_read_latencies(client_region)
        self._needed_cache: dict[str, list[PlacedChunk]] = {}
        self._nearest_cache: dict[str, list[PlacedChunk]] = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def client_region(self) -> str:
        """Region this client runs in."""
        return self._region

    @property
    def store(self) -> ErasureCodedStore:
        """The backing object store."""
        return self._store

    def cache_snapshot(self) -> CacheSnapshot | None:
        """Snapshot of the strategy's cache contents (None for Backend)."""
        return None

    # ------------------------------------------------------------------ #
    # Periodic maintenance (timer events of the discrete-event engine)
    # ------------------------------------------------------------------ #
    @property
    def reconfiguration_period_s(self) -> float | None:
        """Period of the strategy's timer-driven maintenance (None = none)."""
        return None

    def set_external_reconfiguration(self, external: bool) -> None:
        """Hand periodic reconfiguration over to an external driver.

        When external, the strategy must not check its reconfiguration period
        on the read path; the engine calls :meth:`tick` at exact period
        boundaries instead.  A no-op for strategies without periodic work.
        """

    def tick(self, now: float) -> None:
        """Run one round of periodic maintenance at simulated time ``now``."""

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #
    @abstractmethod
    def read(self, key: str, now: float) -> ReadResult:
        """Perform one object read at simulated time ``now`` (seconds)."""

    def _needed(self, key: str) -> list[PlacedChunk]:
        """The k chunks a failure-free read fetches, furthest first (cached per key)."""
        plan = self._needed_cache.get(key)
        if plan is None:
            params = self._store.params
            plan = needed_chunks(
                self._store.chunks_by_region(key),
                self._expected_latencies,
                data_chunks=params.data_chunks,
                parity_chunks=params.parity_chunks,
            )
            self._needed_cache[key] = plan
        return plan

    def _chunk_size(self, key: str) -> int:
        return self._store.metadata(key).chunk_size

    def _compose_result(self, key: str, now: float, cache_chunks: list[PlacedChunk],
                        backend_chunks: list[PlacedChunk],
                        extra_overhead_ms: float = 0.0) -> ReadResult:
        """Sample per-chunk latencies and build the read result."""
        chunk_size = self._chunk_size(key)
        latency = self._latency
        region = self._region
        slowest = 0.0
        for _ in cache_chunks:
            sample = latency.sample_cache_read(region, chunk_size)
            if sample > slowest:
                slowest = sample
        for placed in backend_chunks:
            sample = latency.sample_backend_read(region, placed.region, chunk_size)
            if sample > slowest:
                slowest = sample

        total = self._config.overhead_ms + extra_overhead_ms + slowest
        if self._config.include_decode_cost:
            total += self._store.codec.decoding_cost_estimate(self._store.metadata(key).size)

        if backend_chunks and cache_chunks:
            hit_type = HitType.PARTIAL
        elif cache_chunks:
            hit_type = HitType.FULL
        else:
            hit_type = HitType.MISS

        return ReadResult(
            key=key,
            latency_ms=total,
            hit_type=hit_type,
            chunks_from_cache=len(cache_chunks),
            chunks_from_backend=len(backend_chunks),
            backend_regions=tuple(sorted({placed.region for placed in backend_chunks})),
            started_at_s=now,
        )

    def _backend_plan(self, key: str, exclude_indices: set[int]) -> list[PlacedChunk]:
        """Choose which chunks to fetch from the backend.

        The client fetches the *nearest* chunks first, skipping those already
        obtained from the cache, until it has ``k`` chunks in total.
        """
        params = self._store.params
        required = params.data_chunks - len(exclude_indices)
        if required <= 0:
            return []
        nearest_first = self._nearest_cache.get(key)
        if nearest_first is None:
            nearest_first = list(reversed(self._needed(key)))
            self._nearest_cache[key] = nearest_first
        if not exclude_indices:
            return nearest_first[:required]
        plan = [placed for placed in nearest_first if placed.index not in exclude_indices]
        return plan[:required]


class BackendReadStrategy(ReadStrategy):
    """Read every chunk directly from the backend buckets (no cache)."""

    name = "backend"

    def read(self, key: str, now: float) -> ReadResult:
        backend_chunks = self._backend_plan(key, exclude_indices=set())
        return self._compose_result(key, now, cache_chunks=[], backend_chunks=backend_chunks)


class FixedChunkCachingStrategy(ReadStrategy):
    """Online fixed-chunk baselines: cache ``c`` chunks per object, evict online.

    This is the classical, continuously updated form of the LRU-c / LFU-c
    baselines: every read inserts the object's ``c`` most distant chunks and
    the eviction policy (memcached-style LRU, or LFU over cumulative request
    counts) picks victims immediately when the cache overflows.

    The paper's LRU baseline is exactly this (it relies on memcached's LRU,
    §V-A).  Its LFU baseline, however, shares Agar's 30-second reconfiguration
    period (§V-A); that periodic variant is :class:`PeriodicLFUStrategy`.  The
    online LFU here (strategy name ``lfu-online-<c>``) is kept as a stronger
    ablation baseline.

    Args:
        store: the object store.
        client_region: client/cache region.
        cache_capacity_bytes: capacity of the local cache.
        chunks_per_object: ``c`` — how many chunks to keep per object
            (the paper sweeps 1, 3, 5, 7, 9).
        policy: ``"lru"`` or ``"lfu"``.
        clock: optional simulated-time callable for cache recency.
        config: client latency constants.
    """

    def __init__(self, store: ErasureCodedStore, client_region: str, cache_capacity_bytes: int,
                 chunks_per_object: int, policy: str = "lru",
                 clock: Callable[[], float] | None = None,
                 config: ClientConfig | None = None) -> None:
        super().__init__(store, client_region, config)
        data_chunks = store.params.data_chunks
        if not 1 <= chunks_per_object <= data_chunks:
            raise ValueError(f"chunks_per_object must be in 1..{data_chunks}")
        if policy == "lru":
            eviction = LRUEvictionPolicy()
        elif policy == "lfu":
            eviction = LFUEvictionPolicy()
        else:
            raise ValueError("policy must be 'lru' or 'lfu'")
        self._chunks_per_object = chunks_per_object
        self._policy_name = policy
        self.name = f"{policy}-{chunks_per_object}"
        self._cache = ChunkCache(
            capacity_bytes=cache_capacity_bytes,
            policy=eviction,
            clock=clock,
            region=client_region,
        )

    @property
    def cache(self) -> ChunkCache:
        """The strategy's local chunk cache."""
        return self._cache

    @property
    def chunks_per_object(self) -> int:
        """The fixed number of chunks cached per object."""
        return self._chunks_per_object

    def cache_snapshot(self) -> CacheSnapshot:
        return self._cache.snapshot()

    def _target_chunks(self, key: str) -> list[PlacedChunk]:
        """The ``c`` most distant chunks of the needed set — what gets cached."""
        return self._needed(key)[: self._chunks_per_object]

    def read(self, key: str, now: float) -> ReadResult:
        self._cache.record_request(key)
        targets = self._target_chunks(key)

        cache_hits: list[PlacedChunk] = []
        for placed in targets:
            if self._cache.get(ChunkId(key=key, index=placed.index)) is not None:
                cache_hits.append(placed)

        backend_chunks = self._backend_plan(key, exclude_indices={p.index for p in cache_hits})
        result = self._compose_result(key, now, cache_hits, backend_chunks)

        # Populate the cache off the critical path (not charged to latency).
        chunk_size = self._chunk_size(key)
        for placed in targets:
            self._cache.put(Chunk(chunk_id=ChunkId(key=key, index=placed.index), size=chunk_size))
        return result


class PeriodicLFUStrategy(ReadStrategy):
    """The paper's LFU-c baseline: fixed chunks per object, periodic LFU contents.

    The paper's LFU client runs a proxy that tracks per-object request
    frequency and — like Agar — uses a 30-second cache reconfiguration period
    (§V-A).  Every period the cache contents are recomputed: the most popular
    objects (by the same EWMA statistics Agar's Request Monitor keeps) get
    their ``c`` most distant chunks pinned, filling the cache; clients then
    populate missing pinned chunks as they read.

    Strategy name: ``lfu-<c>`` (this is the Fig. 6/7/8 baseline).

    Args:
        store: the object store.
        client_region: client/cache region.
        cache_capacity_bytes: capacity of the local cache.
        chunks_per_object: ``c`` — chunks kept per cached object.
        reconfiguration_period_s: statistics/reconfiguration period (paper: 30 s).
        alpha: EWMA weight of the current period (same convention as Agar).
        clock: optional simulated-time callable.
        config: client latency constants.
    """

    def __init__(self, store: ErasureCodedStore, client_region: str, cache_capacity_bytes: int,
                 chunks_per_object: int, reconfiguration_period_s: float = 30.0,
                 alpha: float | None = None, clock: Callable[[], float] | None = None,
                 config: ClientConfig | None = None) -> None:
        super().__init__(store, client_region, config)
        from repro.cache.policies import PinnedConfigurationPolicy
        from repro.core.agar_node import DEFAULT_CURRENT_PERIOD_WEIGHT
        from repro.core.popularity import PopularityTracker

        data_chunks = store.params.data_chunks
        if not 1 <= chunks_per_object <= data_chunks:
            raise ValueError(f"chunks_per_object must be in 1..{data_chunks}")
        self._chunks_per_object = chunks_per_object
        self.name = f"lfu-{chunks_per_object}"
        self._period_s = reconfiguration_period_s
        self._tracker = PopularityTracker(
            alpha=DEFAULT_CURRENT_PERIOD_WEIGHT if alpha is None else alpha
        )
        self._pinned_policy = PinnedConfigurationPolicy()
        self._cache = ChunkCache(
            capacity_bytes=cache_capacity_bytes,
            policy=self._pinned_policy,
            clock=clock,
            region=client_region,
        )
        self._last_reconfiguration: float | None = None
        self._external_reconfiguration = False

    @property
    def cache(self) -> ChunkCache:
        """The strategy's local chunk cache."""
        return self._cache

    @property
    def chunks_per_object(self) -> int:
        """The fixed number of chunks cached per object."""
        return self._chunks_per_object

    def cache_snapshot(self) -> CacheSnapshot:
        return self._cache.snapshot()

    @property
    def reconfiguration_period_s(self) -> float | None:
        return self._period_s

    def set_external_reconfiguration(self, external: bool) -> None:
        self._external_reconfiguration = bool(external)

    def tick(self, now: float) -> None:
        keys = self._store.keys()
        if keys:
            self._reconfigure(keys[0])
        self._last_reconfiguration = now

    def _capacity_objects(self, key: str) -> int:
        chunk_size = self._chunk_size(key)
        capacity_chunks = self._cache.capacity_bytes // chunk_size if chunk_size else 0
        return capacity_chunks // self._chunks_per_object

    def _reconfigure(self, key: str) -> None:
        popularity = self._tracker.end_period()
        top_keys = sorted(popularity, key=lambda k: (-popularity[k], k))
        top_keys = [k for k in top_keys if popularity[k] > 0][: self._capacity_objects(key)]
        pinned: set[ChunkId] = set()
        for top_key in top_keys:
            for placed in self._needed(top_key)[: self._chunks_per_object]:
                pinned.add(ChunkId(key=top_key, index=placed.index))
        self._pinned_policy.set_configuration(pinned)

    def _maybe_reconfigure(self, key: str, now: float) -> None:
        if self._last_reconfiguration is None:
            self._last_reconfiguration = now
            return
        if now - self._last_reconfiguration >= self._period_s:
            self._reconfigure(key)
            self._last_reconfiguration = now

    def read(self, key: str, now: float) -> ReadResult:
        if not self._external_reconfiguration:
            self._maybe_reconfigure(key, now)
        self._tracker.record_access(key)

        targets = self._needed(key)[: self._chunks_per_object]
        cache_hits: list[PlacedChunk] = []
        missing_targets: list[PlacedChunk] = []
        for placed in targets:
            if self._cache.get(ChunkId(key=key, index=placed.index)) is not None:
                cache_hits.append(placed)
            else:
                missing_targets.append(placed)

        backend_chunks = self._backend_plan(key, exclude_indices={p.index for p in cache_hits})
        result = self._compose_result(key, now, cache_hits, backend_chunks)

        chunk_size = self._chunk_size(key)
        for placed in missing_targets:
            self._cache.put(Chunk(chunk_id=ChunkId(key=key, index=placed.index), size=chunk_size))
        return result


class AgarReadStrategy(ReadStrategy):
    """Reads driven by an Agar node's hints (paper §III, §V-A).

    Args:
        store: the object store.
        client_region: client/cache region.
        cache_capacity_bytes: capacity of the Agar-managed cache.
        node_config: Agar node tunables (reconfiguration period, alpha, ...).
        clock: optional simulated-time callable.
        config: client latency constants.
    """

    name = "agar"

    def __init__(self, store: ErasureCodedStore, client_region: str, cache_capacity_bytes: int,
                 node_config: AgarNodeConfig | None = None,
                 clock: Callable[[], float] | None = None,
                 config: ClientConfig | None = None) -> None:
        super().__init__(store, client_region, config)
        self._node = AgarNode(
            local_region=client_region,
            store=store,
            cache_capacity_bytes=cache_capacity_bytes,
            config=node_config,
            clock=clock,
        )

    @property
    def node(self) -> AgarNode:
        """The Agar node backing this strategy."""
        return self._node

    @property
    def cache(self) -> ChunkCache:
        """The Agar-managed cache."""
        return self._node.cache

    def cache_snapshot(self) -> CacheSnapshot:
        return self._node.cache.snapshot()

    @property
    def reconfiguration_period_s(self) -> float | None:
        return self._node.config.reconfiguration_period_s

    def set_external_reconfiguration(self, external: bool) -> None:
        self._node.auto_reconfigure = not external

    def tick(self, now: float) -> None:
        self._node.reconfigure(now)

    def read(self, key: str, now: float) -> ReadResult:
        hints = self._node.on_request(key, now)
        cache = self._node.cache

        hinted = set(hints.cached_chunk_indices)
        cache_hits: list[PlacedChunk] = []
        missing_hinted: list[PlacedChunk] = []
        for placed in self._needed(key):
            if placed.index not in hinted:
                continue
            if cache.get(ChunkId(key=key, index=placed.index)) is not None:
                cache_hits.append(placed)
            else:
                missing_hinted.append(placed)

        backend_chunks = self._backend_plan(key, exclude_indices={p.index for p in cache_hits})
        result = self._compose_result(
            key, now, cache_hits, backend_chunks,
            extra_overhead_ms=hints.processing_overhead_ms,
        )

        # Write the hinted chunks the client had to fetch from the backend into
        # the cache (done by a separate thread pool in the prototype, §V-A).
        chunk_size = self._chunk_size(key)
        fetched_indices = {placed.index for placed in backend_chunks}
        for placed in missing_hinted:
            if placed.index in fetched_indices:
                cache.put(Chunk(chunk_id=ChunkId(key=key, index=placed.index), size=chunk_size))
        return result


def make_strategy(name: str, store: ErasureCodedStore, client_region: str,
                  cache_capacity_bytes: int, clock: Callable[[], float] | None = None,
                  client_config: ClientConfig | None = None,
                  node_config: AgarNodeConfig | None = None) -> ReadStrategy:
    """Factory used by experiments: build a strategy from a short name.

    Recognised names:

    * ``"backend"`` — no caching, read straight from the backend buckets.
    * ``"agar"`` — Agar-driven reads.
    * ``"lru-<c>"`` — online LRU keeping ``c`` chunks per object (memcached-style).
    * ``"lfu-<c>"`` — the paper's LFU baseline: ``c`` chunks per object with a
      30-second reconfiguration period.
    * ``"lru-online-<c>"`` / ``"lfu-online-<c>"`` — online (cumulative) variants
      used by the ablation benchmarks.
    """
    if name == "backend":
        return BackendReadStrategy(store, client_region, client_config)
    if name == "agar":
        return AgarReadStrategy(
            store, client_region, cache_capacity_bytes,
            node_config=node_config, clock=clock, config=client_config,
        )
    for prefix in ("lru-online", "lfu-online"):
        if name.startswith(prefix + "-"):
            chunks = int(name.rsplit("-", 1)[1])
            return FixedChunkCachingStrategy(
                store, client_region, cache_capacity_bytes, chunks_per_object=chunks,
                policy=prefix.split("-")[0], clock=clock, config=client_config,
            )
    if name.startswith("lru-"):
        chunks = int(name.split("-", 1)[1])
        return FixedChunkCachingStrategy(
            store, client_region, cache_capacity_bytes, chunks_per_object=chunks,
            policy="lru", clock=clock, config=client_config,
        )
    if name.startswith("lfu-"):
        chunks = int(name.split("-", 1)[1])
        period = node_config.reconfiguration_period_s if node_config else 30.0
        return PeriodicLFUStrategy(
            store, client_region, cache_capacity_bytes, chunks_per_object=chunks,
            reconfiguration_period_s=period, clock=clock, config=client_config,
        )
    raise ValueError(f"unknown strategy {name!r}")
