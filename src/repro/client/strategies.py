"""Client read strategies: Backend, LRU-c, LFU-c and Agar (paper §V-A).

The paper evaluates four customised YCSB clients that differ only in how they
locate the ``k`` chunks needed to reconstruct an object:

* **Backend** — read every chunk from the (possibly remote) backend buckets.
* **LRU-c / LFU-c** — keep a fixed number ``c`` of chunks per object in the
  local cache (the ``c`` most distant ones), managed by the LRU or LFU
  eviction policy.
* **Agar** — ask the local Agar node for hints and use the chunks its current
  configuration keeps in the cache.

All strategies share the same latency model: chunks are requested in parallel,
so a read costs a fixed client overhead plus the slowest chunk fetch plus the
decoding time (§IV "assumes the client requests blocks in parallel").  Cache
writes happen off the critical path and are not charged (§V-A).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.backend.object_store import ErasureCodedStore
from repro.cache.base import CacheSnapshot
from repro.cache.chunk_cache import ChunkCache
from repro.cache.policies import LFUEvictionPolicy, LRUEvictionPolicy
from repro.client.resilience import BackoffPolicy, EwmaQuantileTracker, ResilienceConfig
from repro.client.stats import HitType, ReadResult
from repro.core.agar_node import AgarNode, AgarNodeConfig
from repro.core.options import PlacedChunk, needed_chunks
from repro.erasure.chunk import Chunk, ChunkId


class _SelectionRecord:
    """Everything one backend-fetch selection needs at read time.

    Memoised per cache-hit pattern in :class:`_IndexedReadPlan`, so one short
    dict lookup per read replaces the selection scan, the draw grouping, the
    regions tuple and the fetched-index set.
    """

    __slots__ = ("positions", "count", "groups", "regions", "fetched_indices")

    def __init__(self, positions: tuple[int, ...],
                 groups: tuple[tuple[float, float, tuple[int, ...]], ...],
                 regions: tuple[str, ...], fetched_indices: frozenset[int]) -> None:
        self.positions = positions
        self.count = len(positions)
        self.groups = groups
        self.regions = regions
        self.fetched_indices = fetched_indices


class _IndexedReadPlan:
    """Precomputed per-key state for :meth:`ReadStrategy.read_indexed`.

    Everything about one key's read that does not depend on the cache state is
    computed once: the needed/nearest chunk orders, the reusable chunk ids and
    (metadata-only) chunk objects for cache lookups and writes, the expected
    latency and jitter σ of every chunk's link, and the decode estimate.  The
    per-read work then reduces to cache probes, one jitter draw per chunk and
    a handful of float operations — bit-identical to the string-keyed path,
    which recomputes all of this through dict lookups on every read.
    """

    __slots__ = ("key", "needed", "needed_chunk_ids", "needed_chunks", "nearest",
                 "nearest_indices", "nearest_expected_ms", "nearest_jitter",
                 "cache_expected_ms", "cache_jitter", "all_jitter_positive",
                 "decode_ms", "data_chunks", "_prefixes", "_regions_memo",
                 "_selection_memo", "_groups_memo")

    def __init__(self, key: str, needed: list[PlacedChunk], chunk_size: int,
                 latency, client_region: str, data_chunks: int, decode_ms: float) -> None:
        self.key = key
        self.needed = needed
        self.needed_chunk_ids = [ChunkId(key=key, index=placed.index) for placed in needed]
        self.needed_chunks = [Chunk(chunk_id=chunk_id, size=chunk_size)
                              for chunk_id in self.needed_chunk_ids]
        nearest = list(reversed(needed))
        self.nearest = nearest
        self.nearest_indices = [placed.index for placed in nearest]
        profiles = [latency.link(client_region, placed.region) for placed in nearest]
        self.nearest_expected_ms = [profile.expected_read_ms(chunk_size) for profile in profiles]
        self.nearest_jitter = [profile.jitter for profile in profiles]
        try:
            cache_profile = latency.cache_link(client_region)
        except KeyError:
            # No local cache link: tolerated at plan-build time (the backend
            # strategy never reads the cache), but a cache hit must fail the
            # same way the string path's sample_cache_read would — the None
            # sentinel makes _compose_indexed raise then.
            self.cache_expected_ms = None
            self.cache_jitter = 0.0
        else:
            self.cache_expected_ms = cache_profile.expected_read_ms(chunk_size)
            self.cache_jitter = cache_profile.jitter
        self.all_jitter_positive = (self.cache_jitter > 0.0
                                    and all(sigma > 0.0 for sigma in self.nearest_jitter))
        self.decode_ms = decode_ms
        self.data_chunks = data_chunks
        self._prefixes = [tuple(range(count)) for count in range(data_chunks + 1)]
        self._regions_memo: dict[tuple[int, ...], tuple[str, ...]] = {}
        # Keys are hit-position tuples, or (hits, neighbours) pairs on
        # collaborative deployments (the two shapes cannot collide).
        self._selection_memo: dict[object, _SelectionRecord] = {}
        self._groups_memo: dict[tuple[int, ...],
                                tuple[tuple[float, float, tuple[int, ...]], ...]] = {}

    def backend_positions(self, exclude_indices: set[int] | frozenset[int]) -> tuple[int, ...]:
        """Positions (into the nearest-first order) of the chunks to fetch.

        Mirrors :meth:`ReadStrategy._backend_plan`: nearest chunks first,
        skipping those already obtained from the cache, until ``k`` chunks
        are gathered in total.
        """
        required = self.data_chunks - len(exclude_indices)
        if required <= 0:
            return ()
        if not exclude_indices:
            return self._prefixes[required]
        indices = self.nearest_indices
        selected = [position for position in range(len(indices))
                    if indices[position] not in exclude_indices]
        return tuple(selected[:required])

    def selection_for_hits(self, hit_positions: tuple[int, ...],
                           neighbor_positions: tuple[int, ...] = ()) -> _SelectionRecord:
        """The backend selection of a cache-hit pattern, memoised per pattern.

        ``hit_positions`` are positions into the needed (furthest-first)
        order, listed in that order — the canonical form every reader
        produces — so each distinct hit pattern resolves its selection (and
        the derived draw groups, regions tuple and fetched-index set) once.
        ``neighbor_positions`` (collaborative deployments only) are needed
        positions served from a neighbour's cache; they are excluded from the
        backend fetch like hits, and distinct (hits, neighbours) patterns
        memoise separately.
        """
        memo_key: object = ((hit_positions, neighbor_positions) if neighbor_positions
                            else hit_positions)
        record = self._selection_memo.get(memo_key)
        if record is None:
            excluded = {self.needed[position].index for position in hit_positions}
            excluded.update(self.needed[position].index for position in neighbor_positions)
            positions = self.backend_positions(excluded)
            nearest_indices = self.nearest_indices
            record = _SelectionRecord(
                positions=positions,
                groups=self.compose_groups(positions),
                regions=self.backend_regions(positions),
                fetched_indices=frozenset(
                    nearest_indices[position] for position in positions
                ),
            )
            self._selection_memo[memo_key] = record
        return record

    def compose_groups(self, positions: tuple[int, ...]
                       ) -> tuple[tuple[float, float, tuple[int, ...]], ...]:
        """A fetch selection grouped by identical ``(expected, σ)`` pairs.

        Chunks read over links with bit-equal expected latency and jitter
        (typically: same backend region) produce samples that are the same
        monotonic function of their z draw, so only the group's largest z can
        be the slowest — one ``exp`` per group instead of per chunk.  Each
        group carries the draw offsets (positions within the selection) its
        chunks consume, keeping the block stream layout unchanged.
        """
        groups = self._groups_memo.get(positions)
        if groups is None:
            by_pair: dict[tuple[float, float], list[int]] = {}
            expected_by_position = self.nearest_expected_ms
            jitter_by_position = self.nearest_jitter
            for offset, position in enumerate(positions):
                pair = (expected_by_position[position], jitter_by_position[position])
                by_pair.setdefault(pair, []).append(offset)
            groups = tuple(
                (expected, jitter, tuple(offsets))
                for (expected, jitter), offsets in by_pair.items()
            )
            self._groups_memo[positions] = groups
        return groups

    def backend_regions(self, positions: tuple[int, ...]) -> tuple[str, ...]:
        """Distinct backend regions of a fetch selection (memoised)."""
        regions = self._regions_memo.get(positions)
        if regions is None:
            nearest = self.nearest
            regions = tuple(sorted({nearest[position].region for position in positions}))
            self._regions_memo[positions] = regions
        return regions


@dataclass(frozen=True)
class ClientConfig:
    """Client-side latency constants.

    Attributes:
        overhead_ms: fixed per-read client/request overhead (connection setup,
            scheduling of the parallel chunk requests).
        include_decode_cost: charge the Reed-Solomon decode estimate to reads.
        resilience: retry/hedge/emergency-reconfiguration knobs
            (:class:`~repro.client.resilience.ResilienceConfig`); ``None``
            (the default) keeps the failure-free fast paths untouched.
    """

    overhead_ms: float = 40.0
    include_decode_cost: bool = True
    resilience: ResilienceConfig | None = None


class ReadStrategy(ABC):
    """Base class for the four read strategies.

    Strategies are re-entrant with respect to interleaved clients: one
    instance serves every client of its region, so :meth:`read` must only
    touch state that is safe under arbitrary request interleavings.  The
    per-key plan caches (``_needed_cache`` / ``_nearest_cache``) qualify —
    they memoise pure functions of the key — and cache writes happen
    atomically within one read event, so the discrete-event engine can
    interleave any number of clients through one strategy.

    Args:
        store: the erasure-coded object store.
        client_region: region the client (and its local cache) runs in.
        config: client latency constants.
    """

    name: str = "base"

    #: Engine wave dispatch: True on strategies whose ``read_indexed`` is
    #: stateless (no cache probes, a fixed draw count per read), letting
    #: the engine sample a whole ready-set's jitter in one call and compose
    #: the reads through :meth:`compose_indexed_batch`.  The engine batches
    #: only when every selected region's strategy opts in, the topology is
    #: fully jittered, and no fault is active.
    supports_indexed_batch: bool = False

    def __init__(self, store: ErasureCodedStore, client_region: str,
                 config: ClientConfig | None = None) -> None:
        self._store = store
        self._region = store.topology.validate_region(client_region)
        self._config = config or ClientConfig()
        self._latency = store.topology.latency
        self._expected_latencies = store.topology.expected_read_latencies(client_region)
        self._needed_cache: dict[str, list[PlacedChunk]] = {}
        self._nearest_cache: dict[str, list[PlacedChunk]] = {}
        # Hoisted latency constants (hot-path attribute chains).
        self._overhead_ms = self._config.overhead_ms
        self._include_decode = self._config.include_decode_cost
        # Index-based read support (see prepare_indexed_reads).
        self._indexed_keys: list[str] | None = None
        self._indexed_plans: list[_IndexedReadPlan | None] = []
        # §VI neighbour catalog (see set_neighbor_catalog); None = no
        # collaboration, the default for every non-collaborative deployment.
        # _neighbor_pinned is the *effective* union the read path tests;
        # _neighbor_catalogs keeps the per-neighbour provenance (None when the
        # catalog was installed as a flat, provenance-free set).
        self._neighbor_pinned: frozenset[ChunkId] | None = None
        self._neighbor_catalogs: dict[str, frozenset[ChunkId]] | None = None
        self._neighbor_read_ms = 0.0
        self._neighbor_jitter = 0.0
        # Live fault state (see repro.sim.faults and set_fault_state).  The
        # read path only pays for faults while one is active: _faulted is the
        # single flag the hot paths test.
        self._fault_state = None
        self._faulted = False
        self._down_backends: frozenset[str] = frozenset()
        self._down_caches: frozenset[str] = frozenset()
        self._brownouts: dict[str, float] | None = None
        self._cache_down = False
        self._seen_fault = False
        self._all_nearest_cache: dict[str, list[PlacedChunk]] = {}
        # Resilience (repro.client.resilience): _resilience is non-None only
        # when the retry/hedge read path must run; emergency reconfiguration
        # is gated separately so it can be enabled on its own.
        resilience = self._config.resilience
        self._resilience = (resilience if resilience is not None
                            and resilience.active else None)
        self._emergency_reconfig = (resilience.emergency_reconfiguration
                                    if resilience is not None else False)
        self._backoff = (BackoffPolicy.from_config(resilience)
                         if self._resilience is not None else None)
        self._read_serial = 0
        self._hedge_trackers: dict[str, EwmaQuantileTracker] = {}
        # Optional decision sink (repro.serve): called once per string-path
        # read with (result, cache_chunks, backend_chunks) so a serving tier
        # can fetch exactly the chunks the strategy decided on.  None keeps
        # the hot path free of any serving overhead.
        self._decision_sink = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def client_region(self) -> str:
        """Region this client runs in."""
        return self._region

    @property
    def store(self) -> ErasureCodedStore:
        """The backing object store."""
        return self._store

    def cache_snapshot(self) -> CacheSnapshot | None:
        """Snapshot of the strategy's cache contents (None for Backend)."""
        return None

    @property
    def resilience_active(self) -> bool:
        """True when reads route through the retry/hedge composition path.

        The engine's batched stateless wave dispatch checks this: resilient
        reads no longer consume a fixed number of jitter draws, so waves must
        fall back to per-event dispatch (which delegates to the string read
        path, exactly like faulted reads).
        """
        return self._resilience is not None

    # ------------------------------------------------------------------ #
    # Periodic maintenance (timer events of the discrete-event engine)
    # ------------------------------------------------------------------ #
    @property
    def reconfiguration_period_s(self) -> float | None:
        """Period of the strategy's timer-driven maintenance (None = none)."""
        return None

    def set_external_reconfiguration(self, external: bool) -> None:
        """Hand periodic reconfiguration over to an external driver.

        When external, the strategy must not check its reconfiguration period
        on the read path; the engine calls :meth:`tick` at exact period
        boundaries instead.  A no-op for strategies without periodic work.
        """

    def tick(self, now: float) -> None:
        """Run one round of periodic maintenance at simulated time ``now``."""

    # ------------------------------------------------------------------ #
    # Serving-tier decision sink
    # ------------------------------------------------------------------ #
    def set_decision_sink(self, sink) -> None:
        """Install a callback observing every string-path read decision.

        ``sink(result, cache_chunks, backend_chunks)`` fires once per
        :meth:`read` call with the composed :class:`ReadResult` and the exact
        :class:`PlacedChunk` lists the strategy planned to fetch from the
        local cache and the backend buckets.  The serving tier
        (:mod:`repro.serve`) uses this to serve real bytes for precisely the
        chunks the decision named and to build its per-request ledger.  The
        indexed fast path (:meth:`read_indexed`) does not fire the sink — it
        deliberately drops per-chunk identity.  Pass ``None`` to uninstall.
        """
        self._decision_sink = sink

    # ------------------------------------------------------------------ #
    # §VI collaboration: the neighbour catalog
    # ------------------------------------------------------------------ #
    def set_neighbor_catalog(self,
                             pinned: (frozenset[ChunkId]
                                      | Mapping[str, frozenset[ChunkId]] | None),
                             neighbor_read_ms: float,
                             neighbor_jitter: float = 0.0) -> None:
        """Install what the collaborating neighbour caches currently pin.

        After each §VI exchange round the engine hands every region the
        pinned chunks of the *other* regions.  A needed chunk that misses the
        local cache but appears in this catalog is then read from the
        neighbour's cache at ``neighbor_read_ms`` expected latency (the same
        estimate the option discounting uses) instead of from its backend
        bucket — the read-path half of the collaboration §VI sketches: give
        up caching what a nearby cache already holds, and fetch it from there.

        The substitution is per chunk and cost-aware: a catalog chunk is
        read from the neighbour only when ``neighbor_read_ms`` (the
        ``Topology.neighbor_link`` expectation) *beats* that chunk's own
        backend link (``PlacedChunk.latency_ms``).  Chunks whose bucket is
        closer than the collaborating cache — local-region chunks above
        all — keep going to the backend; a catalog hit must never make a
        read slower in expectation.

        ``neighbor_jitter`` is the log-normal σ of the neighbour link
        (``Topology.neighbor_link``); when positive, each neighbour chunk
        draws one sample from the strategy's refillable normal block exactly
        like cache/backend chunks, keeping the string and indexed read paths
        bit-identical.  The default 0 preserves the flat, draw-free estimate
        for direct callers.  ``None`` pinned disables neighbour reads (the
        default).

        ``pinned`` may be a flat ``frozenset`` (legacy, provenance-free) or a
        mapping ``{neighbour region: pinned chunks}``.  With provenance the
        read path still tests one effective union, but the union is
        recomputed against the live fault state — a neighbour whose region is
        currently down (backend or cache) contributes nothing, so a remote
        ``RegionOutage``/``AZFailure`` darks exactly that neighbour's
        entries.
        """
        if neighbor_read_ms < 0:
            raise ValueError("neighbor_read_ms must be non-negative")
        if neighbor_jitter < 0:
            raise ValueError("neighbor_jitter must be non-negative")
        if isinstance(pinned, Mapping):
            self._neighbor_catalogs = {
                region: frozenset(chunks) for region, chunks in pinned.items()
            }
        else:
            self._neighbor_catalogs = None
            self._neighbor_pinned = pinned if pinned else None
        self._neighbor_read_ms = neighbor_read_ms
        self._neighbor_jitter = neighbor_jitter
        self._refresh_neighbor_pinned()

    def _refresh_neighbor_pinned(self) -> None:
        """Recompute the effective neighbour union against the fault state.

        Only runs on the cold paths (catalog install, fault transition); the
        hot read paths keep testing the single precomputed union.  A
        neighbour is dark while its region's backend *or* cache is down: an
        ``AZFailure`` names the cache explicitly, and a ``RegionOutage`` of a
        region is conservatively taken to cut the WAN path to its colocated
        cache server as well.
        """
        catalogs = self._neighbor_catalogs
        if catalogs is None:
            return
        down = self._down_backends | self._down_caches
        live = [chunks for region, chunks in catalogs.items()
                if chunks and region not in down]
        self._neighbor_pinned = frozenset().union(*live) if live else None

    # ------------------------------------------------------------------ #
    # Fault injection (repro.sim.faults)
    # ------------------------------------------------------------------ #
    def set_fault_state(self, state) -> None:
        """Install the fault state active from now on (None/clear = no faults).

        The engine calls this from the fault-schedule timer events; reads
        issued afterwards see the new availability mask immediately.  The
        per-key plan caches are *not* invalidated: they memoise pure
        functions of the immutable placement (the failure-free plan), and the
        degraded-read path consults this live state on every read instead of
        baking availability into a cached plan.
        """
        if state is None or state.is_clear:
            self._fault_state = state
            self._faulted = False
            self._down_backends = frozenset()
            self._down_caches = frozenset()
            self._brownouts = None
            self._cache_down = False
            self._refresh_neighbor_pinned()
            return
        self._fault_state = state
        self._faulted = True
        self._seen_fault = True
        self._down_backends = state.down_backends
        self._down_caches = state.down_caches
        self._brownouts = dict(state.brownouts) if state.brownouts else None
        self._cache_down = self._region in state.down_caches
        self._refresh_neighbor_pinned()

    def react_to_fault(self, now: float) -> None:
        """Hook the engine calls right after every fault-state install.

        The base implementation does nothing; :class:`AgarReadStrategy`
        overrides it to trigger an emergency knapsack re-solve against the
        survivor topology when
        :attr:`ResilienceConfig.emergency_reconfiguration` is on.  The hook
        must not consume latency-model draws — it runs inside the fault
        transition of every scheduler (and inside a single region's shard on
        sharded runs), so any stream consumption would break the bit-identity
        contract between execution paths.
        """

    @property
    def fault_state(self):
        """The currently installed fault state (None when never faulted)."""
        return self._fault_state

    def _all_nearest(self, key: str) -> list[PlacedChunk]:
        """Every placed chunk of ``key``, nearest first (cached per key).

        The degraded-read planner draws survivors from this full ``k + m``
        list, unlike the failure-free plan which pre-discards the ``m``
        furthest chunks.  Caching is safe for the same reason as
        :meth:`_needed`: placement is immutable, and availability is applied
        at read time against the live fault state.
        """
        nearest = self._all_nearest_cache.get(key)
        if nearest is None:
            latencies = self._expected_latencies
            placed = [
                PlacedChunk(index=index, region=region, latency_ms=latencies[region])
                for region, indices in self._store.chunks_by_region(key).items()
                for index in indices
            ]
            # Same ordering key as needed_chunks (furthest first), reversed.
            placed.sort(key=lambda chunk: (-chunk.latency_ms, chunk.region, -chunk.index))
            placed.reverse()
            self._all_nearest_cache[key] = nearest = placed
        return nearest

    def _degraded_backend_plan(self, key: str, exclude_indices: set[int] | frozenset[int],
                               planned: list[PlacedChunk]
                               ) -> tuple[list[PlacedChunk], bool, bool]:
        """Re-plan backend fetches against the live fault state.

        Returns ``(backend_chunks, replanned, failed)``.  If no planned fetch
        touches a down region the failure-free plan stands.  Otherwise the
        nearest surviving chunks (over all ``k + m`` placed chunks, excluding
        those already obtained from cache/neighbours) substitute; when fewer
        than ``k`` total chunks are reachable the read fails.
        """
        down = self._down_backends
        if not down or not any(placed.region in down for placed in planned):
            return planned, False, False
        required = self._store.params.data_chunks - len(exclude_indices)
        survivors = [placed for placed in self._all_nearest(key)
                     if placed.region not in down
                     and placed.index not in exclude_indices]
        if len(survivors) < required:
            return [], False, True
        return survivors[:required], True, False

    def _failed_result(self, key: str, now: float, cache_hits: int,
                       extra_overhead_ms: float = 0.0,
                       neighbor_chunks: int = 0) -> ReadResult:
        """An unavailable read: fewer than ``k`` chunks reachable anywhere.

        The client learns of the failure after its fixed overhead (no chunk
        transfer or decode is charged); the result carries no backend regions
        and is counted only as :attr:`LatencyStats.unavailable_reads`.
        """
        result = ReadResult(
            key=key,
            latency_ms=self._overhead_ms + extra_overhead_ms,
            hit_type=HitType.MISS,
            chunks_from_cache=cache_hits,
            chunks_from_backend=0,
            chunks_from_neighbors=neighbor_chunks,
            backend_regions=(),
            started_at_s=now,
            failed=True,
        )
        sink = self._decision_sink
        if sink is not None:
            sink(result, [], [])
        return result

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #
    @abstractmethod
    def read(self, key: str, now: float) -> ReadResult:
        """Perform one object read at simulated time ``now`` (seconds)."""

    def _needed(self, key: str) -> list[PlacedChunk]:
        """The ``k`` chunks a *failure-free* read fetches, furthest first.

        Cached per key, which is sound because the plan depends only on the
        immutable placement and expected latencies — deliberately *not* on
        chunk availability.  When a fault takes regions down the read path
        does not consult a (stale) per-key plan: it re-plans against the live
        fault state on every read (:meth:`_degraded_backend_plan` over
        :meth:`_all_nearest`), so no cache invalidation is needed when the
        availability mask changes.
        """
        plan = self._needed_cache.get(key)
        if plan is None:
            params = self._store.params
            plan = needed_chunks(
                self._store.chunks_by_region(key),
                self._expected_latencies,
                data_chunks=params.data_chunks,
                parity_chunks=params.parity_chunks,
            )
            self._needed_cache[key] = plan
        return plan

    def _chunk_size(self, key: str) -> int:
        return self._store.metadata(key).chunk_size

    def _compose_result(self, key: str, now: float, cache_chunks: list[PlacedChunk],
                        backend_chunks: list[PlacedChunk],
                        extra_overhead_ms: float = 0.0,
                        neighbor_chunks: int = 0,
                        degraded: bool = False,
                        hedge_exclude: frozenset[int] | None = None) -> ReadResult:
        """Sample per-chunk latencies and build the read result.

        ``neighbor_chunks`` chunks are fetched from a collaborating
        neighbour's cache — in parallel with the other fetches, contributing
        to the slowest-chunk maximum; each draws one jitter sample when the
        neighbour link carries a σ (see :meth:`set_neighbor_catalog`).
        Backend chunks read from a browned-out region have their sampled
        latency multiplied by the brownout factor.  When resilience is active
        the read routes through :meth:`_compose_result_resilient` instead
        (``hedge_exclude`` optionally names chunk indices already served
        elsewhere, so a hedge never re-fetches one).
        """
        if self._resilience is not None:
            result = self._compose_result_resilient(
                key, now, cache_chunks, backend_chunks, extra_overhead_ms,
                neighbor_chunks, degraded, hedge_exclude,
            )
            sink = self._decision_sink
            if sink is not None:
                sink(result, cache_chunks, backend_chunks)
            return result
        chunk_size = self._chunk_size(key)
        latency = self._latency
        region = self._region
        brownouts = self._brownouts
        slowest = 0.0
        for _ in cache_chunks:
            sample = latency.sample_cache_read(region, chunk_size)
            if sample > slowest:
                slowest = sample
        for placed in backend_chunks:
            sample = latency.sample_backend_read(region, placed.region, chunk_size)
            if brownouts is not None:
                multiplier = brownouts.get(placed.region)
                if multiplier is not None:
                    sample *= multiplier
            if sample > slowest:
                slowest = sample
        if neighbor_chunks:
            neighbor_ms = self._neighbor_read_ms
            sigma = self._neighbor_jitter
            if sigma > 0.0:
                exp = math.exp
                draw = latency.next_standard_normal
                for _ in range(neighbor_chunks):
                    sample = neighbor_ms * exp(sigma * draw())
                    if sample > slowest:
                        slowest = sample
            elif neighbor_ms > slowest:
                slowest = neighbor_ms

        total = self._config.overhead_ms + extra_overhead_ms + slowest
        if self._config.include_decode_cost:
            total += self._store.codec.decoding_cost_estimate(self._store.metadata(key).size)

        if (backend_chunks or neighbor_chunks) and cache_chunks:
            hit_type = HitType.PARTIAL
        elif cache_chunks:
            hit_type = HitType.FULL
        else:
            hit_type = HitType.MISS

        result = ReadResult(
            key=key,
            latency_ms=total,
            hit_type=hit_type,
            chunks_from_cache=len(cache_chunks),
            chunks_from_backend=len(backend_chunks),
            chunks_from_neighbors=neighbor_chunks,
            backend_regions=tuple(sorted({placed.region for placed in backend_chunks})),
            started_at_s=now,
            degraded=degraded,
        )
        sink = self._decision_sink
        if sink is not None:
            sink(result, cache_chunks, backend_chunks)
        return result

    def _compose_result_resilient(self, key: str, now: float,
                                  cache_chunks: list[PlacedChunk],
                                  backend_chunks: list[PlacedChunk],
                                  extra_overhead_ms: float,
                                  neighbor_chunks: int,
                                  degraded: bool,
                                  hedge_exclude: frozenset[int] | None) -> ReadResult:
        """Resilient twin of :meth:`_compose_result`: timeouts, retries, hedging.

        The base per-chunk samples are drawn in exactly the same shared-stream
        order as the fast path (cache chunks, then backend chunks in selection
        order, then neighbour chunks); resilience only *adds* draws, each at a
        deterministic point:

        * **Retries** (remote chunks only — backend and neighbour fetches;
          the in-AZ cache is never retried): while a chunk's sample exceeds
          ``timeout_factor ×`` its link's expected latency (brownout
          multiplier included) and the read's budget remains, the client
          abandons the fetch at the timeout, waits the seeded backoff, and
          redraws one sample from the shared stream.  The chunk's latency is
          the accumulated timeout+backoff charges plus the final sample.
        * **Hedge**: if the slowest chunk of the read is a backend fetch and
          exceeds its link's quantile-tracked deadline, one extra chunk is
          speculatively fetched (launched at the deadline) from the nearest
          unused surviving placement, and the read completes at whichever of
          the two finishes first.  Deadline trackers observe each backend
          chunk's final sample *after* the decision, so a read never races
          its own observation.

        Serial numbers, tracker state and retry budgets are all per-strategy,
        and per-strategy event order is identical across the three execution
        paths — which is what keeps resilient runs bit-identical.
        """
        resilience = self._resilience
        backoff = self._backoff
        chunk_size = self._chunk_size(key)
        latency = self._latency
        region = self._region
        brownouts = self._brownouts
        serial = self._read_serial
        self._read_serial = serial + 1
        budget = resilience.retry_budget
        timeout_factor = resilience.timeout_factor
        retries = 0

        totals: list[float] = []
        for _ in cache_chunks:
            totals.append(latency.sample_cache_read(region, chunk_size))

        straggler_pos = -1
        slowest_backend = 0.0
        straggler_region: str | None = None
        backend_samples: list[tuple[str, float]] = []
        for placed in backend_chunks:
            expected = latency.expected_backend_read(region, placed.region, chunk_size)
            multiplier = 1.0
            if brownouts is not None:
                factor = brownouts.get(placed.region)
                if factor is not None:
                    multiplier = factor
                    expected *= factor
            sample = latency.sample_backend_read(region, placed.region, chunk_size)
            if multiplier != 1.0:
                sample *= multiplier
            timeout = timeout_factor * expected
            charged = 0.0
            while budget > 0 and sample > timeout:
                budget -= 1
                retries += 1
                charged += timeout + backoff.delay_ms(serial, retries)
                sample = latency.sample_backend_read(region, placed.region, chunk_size)
                if multiplier != 1.0:
                    sample *= multiplier
            backend_samples.append((placed.region, sample))
            total_chunk = charged + sample
            if total_chunk > slowest_backend:
                slowest_backend = total_chunk
                straggler_pos = len(totals)
                straggler_region = placed.region
            totals.append(total_chunk)

        if neighbor_chunks:
            neighbor_ms = self._neighbor_read_ms
            sigma = self._neighbor_jitter
            if sigma > 0.0:
                exp = math.exp
                draw = latency.next_standard_normal
                timeout = timeout_factor * neighbor_ms
                for _ in range(neighbor_chunks):
                    sample = neighbor_ms * exp(sigma * draw())
                    charged = 0.0
                    while budget > 0 and sample > timeout:
                        budget -= 1
                        retries += 1
                        charged += timeout + backoff.delay_ms(serial, retries)
                        sample = neighbor_ms * exp(sigma * draw())
                    totals.append(charged + sample)
            else:
                # A flat neighbour link samples exactly its expectation, which
                # can never exceed timeout_factor × itself — no retry possible.
                totals.extend([neighbor_ms] * neighbor_chunks)

        slowest = max(totals) if totals else 0.0

        hedged = False
        hedge_won = False
        if (resilience.hedge and straggler_pos >= 0
                and slowest_backend >= slowest and slowest_backend > 0.0):
            tracker = self._hedge_trackers.get(straggler_region)
            if tracker is not None and tracker.ready and slowest_backend > tracker.estimate:
                used = {placed.index for placed in backend_chunks}
                if hedge_exclude is not None:
                    used.update(hedge_exclude)
                else:
                    used.update(placed.index for placed in cache_chunks)
                down = self._down_backends
                candidate = None
                for placed in self._all_nearest(key):
                    if placed.index in used or placed.region in down:
                        continue
                    candidate = placed
                    break
                if candidate is not None:
                    hedged = True
                    deadline = tracker.estimate
                    hedge_sample = latency.sample_backend_read(
                        region, candidate.region, chunk_size
                    )
                    if brownouts is not None:
                        factor = brownouts.get(candidate.region)
                        if factor is not None:
                            hedge_sample *= factor
                    hedge_total = deadline + hedge_sample
                    if hedge_total < slowest_backend:
                        hedge_won = True
                        totals[straggler_pos] = hedge_total
                        slowest = max(totals)

        if resilience.hedge and backend_samples:
            trackers = self._hedge_trackers
            for sample_region, sample in backend_samples:
                tracker = trackers.get(sample_region)
                if tracker is None:
                    trackers[sample_region] = tracker = EwmaQuantileTracker.from_config(resilience)
                tracker.observe(sample)

        total = self._config.overhead_ms + extra_overhead_ms + slowest
        if self._config.include_decode_cost:
            total += self._store.codec.decoding_cost_estimate(self._store.metadata(key).size)

        if (backend_chunks or neighbor_chunks) and cache_chunks:
            hit_type = HitType.PARTIAL
        elif cache_chunks:
            hit_type = HitType.FULL
        else:
            hit_type = HitType.MISS

        return ReadResult(
            key=key,
            latency_ms=total,
            hit_type=hit_type,
            chunks_from_cache=len(cache_chunks),
            chunks_from_backend=len(backend_chunks),
            chunks_from_neighbors=neighbor_chunks,
            backend_regions=tuple(sorted({placed.region for placed in backend_chunks})),
            started_at_s=now,
            degraded=degraded,
            retries=retries,
            hedged=hedged,
            hedge_won=hedge_won,
        )

    # ------------------------------------------------------------------ #
    # Indexed read fast path (the discrete-event engine's inner loop)
    # ------------------------------------------------------------------ #
    def prepare_indexed_reads(self, keys: Sequence[str]) -> None:
        """Install the key space for index-based reads.

        ``keys[i]`` becomes the object key of key index ``i``; per-key read
        plans are built lazily on first use.  Idempotent: re-preparing with an
        equal key list keeps the plans already built (the engine calls this at
        the start of every execute against a warm deployment).
        """
        keys = list(keys)
        if self._indexed_keys == keys:
            return
        self._indexed_keys = keys
        self._indexed_plans = [None] * len(keys)

    def read_indexed(self, key_index: int, now: float) -> ReadResult:
        """Perform one object read identified by its key index.

        Bit-identical to ``read(keys[key_index], now)`` — same cache effects,
        same jitter draws, same latency arithmetic — but without re-hashing
        the key string through the per-key plan dictionaries on every request.
        Requires a prior :meth:`prepare_indexed_reads`.  Subclasses override
        this with a plan-based implementation; the base fallback simply
        resolves the key.
        """
        return self.read(self._indexed_keys[key_index], now)

    def _indexed_plan(self, key_index: int) -> _IndexedReadPlan:
        """The (lazily built) precomputed plan for one key index."""
        try:
            plan = self._indexed_plans[key_index]
        except IndexError:
            if self._indexed_keys is None:
                raise RuntimeError(
                    "prepare_indexed_reads() must be called first"
                ) from None
            raise
        if plan is None:
            key = self._indexed_keys[key_index]
            plan = _IndexedReadPlan(
                key=key,
                needed=self._needed(key),
                chunk_size=self._chunk_size(key),
                latency=self._latency,
                client_region=self._region,
                data_chunks=self._store.params.data_chunks,
                decode_ms=self._store.codec.decoding_cost_estimate(
                    self._store.metadata(key).size
                ),
            )
            self._indexed_plans[key_index] = plan
        return plan

    def resolve_indexed_plans(self, key_indices: Iterable[int]) -> None:
        """Build the read plans of ``key_indices`` in one grouped pass.

        The engine's batched drainer calls this once per run with the
        distinct key indices of a block, so same-key hits share a single
        plan resolution instead of racing through the lazy per-read path.
        Plan construction draws no randomness — prefetching is invisible to
        the determinism contract.  Already-built plans are skipped.
        """
        plans = self._indexed_plans
        build = self._indexed_plan
        for key_index in key_indices:
            if plans[key_index] is None:
                build(key_index)

    def _compose_indexed(self, plan: _IndexedReadPlan, now: float, cache_hits: int,
                         selection: _SelectionRecord,
                         extra_overhead_ms: float = 0.0,
                         neighbor_count: int = 0) -> ReadResult:
        """Fast-path twin of :meth:`_compose_result` over a precomputed plan.

        Draws one jitter sample per chunk in the same order as the string
        path (cache chunks first, then backend chunks nearest-first) and
        applies the same arithmetic — ``expected * exp(σ·z)``, overhead and
        decode added in the same sequence — so results are bit-identical.
        When every involved link is jittered (the usual case) all of the
        read's draws are taken from the block in one batched call, and chunks
        sharing one (expected, σ) pair — the selection's precomputed draw
        groups — need a single ``exp`` at their largest z (``exp`` is
        monotonic), instead of one per chunk.
        """
        exp = math.exp
        slowest = 0.0
        backend_count = selection.count
        if cache_hits and plan.cache_expected_ms is None:
            # Mirror the string path, which fails in sample_cache_read.
            raise KeyError(f"no cache link profile for region {self._region!r}")
        if plan.all_jitter_positive:
            samples = self._latency.take_standard_normals(cache_hits + backend_count)
            if cache_hits:
                slowest = plan.cache_expected_ms * exp(
                    plan.cache_jitter * max(samples[:cache_hits])
                )
            for expected, jitter, offsets in selection.groups:
                largest = samples[cache_hits + offsets[0]]
                for extra in range(1, len(offsets)):
                    candidate = samples[cache_hits + offsets[extra]]
                    if candidate > largest:
                        largest = candidate
                sample = expected * exp(jitter * largest)
                if sample > slowest:
                    slowest = sample
        else:
            expected_by_position = plan.nearest_expected_ms
            jitter_by_position = plan.nearest_jitter
            draw = self._latency.next_standard_normal
            expected = plan.cache_expected_ms
            jitter = plan.cache_jitter
            for _ in range(cache_hits):
                sample = expected * exp(jitter * draw()) if jitter > 0.0 else expected
                if sample > slowest:
                    slowest = sample
            for position in selection.positions:
                expected = expected_by_position[position]
                jitter = jitter_by_position[position]
                sample = expected * exp(jitter * draw()) if jitter > 0.0 else expected
                if sample > slowest:
                    slowest = sample

        if neighbor_count:
            neighbor_ms = self._neighbor_read_ms
            sigma = self._neighbor_jitter
            if sigma > 0.0:
                # Same stream positions as the string path (neighbour draws
                # come after the cache+backend draws); exp is monotonic, so
                # only the largest z can be the slowest neighbour chunk.
                draws = self._latency.take_standard_normals(neighbor_count)
                largest = draws[0]
                for extra in range(1, neighbor_count):
                    if draws[extra] > largest:
                        largest = draws[extra]
                sample = neighbor_ms * exp(sigma * largest)
                if sample > slowest:
                    slowest = sample
            elif neighbor_ms > slowest:
                slowest = neighbor_ms

        total = self._overhead_ms + extra_overhead_ms + slowest
        if self._include_decode:
            total += plan.decode_ms

        if (backend_count or neighbor_count) and cache_hits:
            hit_type = HitType.PARTIAL
        elif cache_hits:
            hit_type = HitType.FULL
        else:
            hit_type = HitType.MISS

        return ReadResult(
            key=plan.key,
            latency_ms=total,
            hit_type=hit_type,
            chunks_from_cache=cache_hits,
            chunks_from_backend=backend_count,
            chunks_from_neighbors=neighbor_count,
            backend_regions=selection.regions,
            started_at_s=now,
        )

    def _backend_plan(self, key: str, exclude_indices: set[int]) -> list[PlacedChunk]:
        """Choose which chunks to fetch from the backend.

        The client fetches the *nearest* chunks first, skipping those already
        obtained from the cache, until it has ``k`` chunks in total.
        """
        params = self._store.params
        required = params.data_chunks - len(exclude_indices)
        if required <= 0:
            return []
        nearest_first = self._nearest_cache.get(key)
        if nearest_first is None:
            nearest_first = list(reversed(self._needed(key)))
            self._nearest_cache[key] = nearest_first
        if not exclude_indices:
            return nearest_first[:required]
        plan = [placed for placed in nearest_first if placed.index not in exclude_indices]
        return plan[:required]


class BackendReadStrategy(ReadStrategy):
    """Read every chunk directly from the backend buckets (no cache)."""

    name = "backend"

    def read(self, key: str, now: float) -> ReadResult:
        backend_chunks = self._backend_plan(key, exclude_indices=set())
        degraded = False
        if self._faulted:
            backend_chunks, degraded, failed = self._degraded_backend_plan(
                key, frozenset(), backend_chunks
            )
            if failed:
                return self._failed_result(key, now, 0)
        return self._compose_result(key, now, cache_chunks=[],
                                    backend_chunks=backend_chunks, degraded=degraded)

    def read_indexed(self, key_index: int, now: float) -> ReadResult:
        if self._faulted or self._resilience is not None:
            # Faulted and resilient reads take the string path: re-planning
            # against the live fault state (and the retry/hedge composition)
            # is identical there across all schedulers, and the indexed fast
            # path resumes the moment neither applies.
            return self.read(self._indexed_keys[key_index], now)
        plan = self._indexed_plan(key_index)
        return self._compose_indexed(plan, now, 0, plan.selection_for_hits(()))

    supports_indexed_batch = True

    def compose_indexed_batch(self, ranks: Sequence[int], times: Sequence[float],
                              draws: np.ndarray) -> list[ReadResult]:
        """Vectorized twin of :meth:`read_indexed` over one engine wave.

        ``draws`` is the wave's slice of the jitter stream — one row of
        ``data_chunks`` z values per read, in event order.  The engine takes
        the whole wave's draws through a single
        ``take_standard_normals_array`` call, so every read sees exactly the
        values its per-event dispatch would have drawn (a backend read on a
        fully jittered topology consumes one draw per fetched chunk, no
        more).  The composition itself is unchanged — per draw group,
        ``expected * exp(σ · max z)`` with the same float operation order —
        only the group maxima are reduced in numpy across the wave, so
        results are bit-identical to sequential ``read_indexed`` calls.

        Only valid while no fault is active (the engine checks per wave;
        fault transitions land on block boundaries, so the flag is constant
        across a wave).
        """
        exp = math.exp
        overhead = self._overhead_ms
        include_decode = self._include_decode
        by_rank: dict[int, list[int]] = {}
        for row, rank in enumerate(ranks):
            bucket = by_rank.get(rank)
            if bucket is None:
                by_rank[rank] = [row]
            else:
                bucket.append(row)
        results: list[ReadResult | None] = [None] * len(ranks)
        for rank, rows in by_rank.items():
            plan = self._indexed_plan(rank)
            selection = plan.selection_for_hits(())
            decode = plan.decode_ms
            backend_count = selection.count
            regions = selection.regions
            key = plan.key
            block = draws[rows]
            columns = []
            for expected, jitter, offsets in selection.groups:
                if len(offsets) == 1:
                    column = block[:, offsets[0]]
                else:
                    column = block[:, offsets].max(axis=1)
                columns.append((expected, jitter, column.tolist()))
            for j, row in enumerate(rows):
                slowest = 0.0
                for expected, jitter, largest in columns:
                    sample = expected * exp(jitter * largest[j])
                    if sample > slowest:
                        slowest = sample
                total = overhead + slowest
                if include_decode:
                    total += decode
                results[row] = ReadResult(
                    key=key,
                    latency_ms=total,
                    hit_type=HitType.MISS,
                    chunks_from_cache=0,
                    chunks_from_backend=backend_count,
                    backend_regions=regions,
                    started_at_s=times[row],
                )
        return results

    def compose_indexed_batch_latencies(self, ranks: Sequence[int],
                                        draws: np.ndarray) -> list[float]:
        """:meth:`compose_indexed_batch` minus the :class:`ReadResult`s.

        Every read in a stateless wave is a plain backend miss — the only
        per-read outputs the engine still needs when results are not kept
        are the latencies (the stats side collapses into one
        ``record_miss_block`` call).  Same draw layout, same float
        arithmetic, bit-identical latencies.
        """
        exp = math.exp
        overhead = self._overhead_ms
        include_decode = self._include_decode
        by_rank: dict[int, list[int]] = {}
        for row, rank in enumerate(ranks):
            bucket = by_rank.get(rank)
            if bucket is None:
                by_rank[rank] = [row]
            else:
                bucket.append(row)
        latencies = [0.0] * len(ranks)
        for rank, rows in by_rank.items():
            plan = self._indexed_plan(rank)
            selection = plan.selection_for_hits(())
            decode = plan.decode_ms
            block = draws[rows]
            columns = []
            for expected, jitter, offsets in selection.groups:
                if len(offsets) == 1:
                    column = block[:, offsets[0]]
                else:
                    column = block[:, offsets].max(axis=1)
                columns.append((expected, jitter, column.tolist()))
            for j, row in enumerate(rows):
                slowest = 0.0
                for expected, jitter, largest in columns:
                    sample = expected * exp(jitter * largest[j])
                    if sample > slowest:
                        slowest = sample
                total = overhead + slowest
                if include_decode:
                    total += decode
                latencies[row] = total
        return latencies


class FixedChunkCachingStrategy(ReadStrategy):
    """Online fixed-chunk baselines: cache ``c`` chunks per object, evict online.

    This is the classical, continuously updated form of the LRU-c / LFU-c
    baselines: every read inserts the object's ``c`` most distant chunks and
    the eviction policy (memcached-style LRU, or LFU over cumulative request
    counts) picks victims immediately when the cache overflows.

    The paper's LRU baseline is exactly this (it relies on memcached's LRU,
    §V-A).  Its LFU baseline, however, shares Agar's 30-second reconfiguration
    period (§V-A); that periodic variant is :class:`PeriodicLFUStrategy`.  The
    online LFU here (strategy name ``lfu-online-<c>``) is kept as a stronger
    ablation baseline.

    Args:
        store: the object store.
        client_region: client/cache region.
        cache_capacity_bytes: capacity of the local cache.
        chunks_per_object: ``c`` — how many chunks to keep per object
            (the paper sweeps 1, 3, 5, 7, 9).
        policy: ``"lru"`` or ``"lfu"``.
        clock: optional simulated-time callable for cache recency.
        config: client latency constants.
    """

    def __init__(self, store: ErasureCodedStore, client_region: str, cache_capacity_bytes: int,
                 chunks_per_object: int, policy: str = "lru",
                 clock: Callable[[], float] | None = None,
                 config: ClientConfig | None = None) -> None:
        super().__init__(store, client_region, config)
        data_chunks = store.params.data_chunks
        if not 1 <= chunks_per_object <= data_chunks:
            raise ValueError(f"chunks_per_object must be in 1..{data_chunks}")
        if policy == "lru":
            eviction = LRUEvictionPolicy()
        elif policy == "lfu":
            eviction = LFUEvictionPolicy()
        else:
            raise ValueError("policy must be 'lru' or 'lfu'")
        self._chunks_per_object = chunks_per_object
        self._policy_name = policy
        self.name = f"{policy}-{chunks_per_object}"
        self._cache = ChunkCache(
            capacity_bytes=cache_capacity_bytes,
            policy=eviction,
            clock=clock,
            region=client_region,
        )

    @property
    def cache(self) -> ChunkCache:
        """The strategy's local chunk cache."""
        return self._cache

    @property
    def chunks_per_object(self) -> int:
        """The fixed number of chunks cached per object."""
        return self._chunks_per_object

    def cache_snapshot(self) -> CacheSnapshot:
        return self._cache.snapshot()

    def _target_chunks(self, key: str) -> list[PlacedChunk]:
        """The ``c`` most distant chunks of the needed set — what gets cached."""
        return self._needed(key)[: self._chunks_per_object]

    def read(self, key: str, now: float) -> ReadResult:
        self._cache.record_request(key)
        targets = self._target_chunks(key)
        # During an AZ failure of this region the cache server is
        # unreachable: no lookups, no fills — but request bookkeeping (the
        # client-side proxy) continues, so popularity state stays warm.
        cache_down = self._faulted and self._cache_down

        cache_hits: list[PlacedChunk] = []
        if not cache_down:
            for placed in targets:
                if self._cache.get(ChunkId(key=key, index=placed.index)) is not None:
                    cache_hits.append(placed)

        exclude = {p.index for p in cache_hits}
        backend_chunks = self._backend_plan(key, exclude_indices=exclude)
        degraded = cache_down
        if self._faulted:
            backend_chunks, replanned, failed = self._degraded_backend_plan(
                key, exclude, backend_chunks
            )
            if failed:
                return self._failed_result(key, now, len(cache_hits))
            degraded = degraded or replanned
        result = self._compose_result(key, now, cache_hits, backend_chunks,
                                      degraded=degraded)

        # Populate the cache off the critical path (not charged to latency).
        if not cache_down:
            chunk_size = self._chunk_size(key)
            for placed in targets:
                self._cache.put(
                    Chunk(chunk_id=ChunkId(key=key, index=placed.index), size=chunk_size)
                )
        return result

    def read_indexed(self, key_index: int, now: float) -> ReadResult:
        if self._faulted or self._resilience is not None:
            return self.read(self._indexed_keys[key_index], now)
        plan = self._indexed_plan(key_index)
        cache = self._cache
        cache.record_request(plan.key)
        target_count = self._chunks_per_object

        get = cache.get
        chunk_ids = plan.needed_chunk_ids
        hit_positions: list[int] = []
        for position in range(target_count):
            if get(chunk_ids[position]) is not None:
                hit_positions.append(position)

        selection = plan.selection_for_hits(tuple(hit_positions))
        result = self._compose_indexed(plan, now, len(hit_positions), selection)

        put = cache.put
        chunks = plan.needed_chunks
        for position in range(target_count):
            put(chunks[position])
        return result


class PeriodicLFUStrategy(ReadStrategy):
    """The paper's LFU-c baseline: fixed chunks per object, periodic LFU contents.

    The paper's LFU client runs a proxy that tracks per-object request
    frequency and — like Agar — uses a 30-second cache reconfiguration period
    (§V-A).  Every period the cache contents are recomputed: the most popular
    objects (by the same EWMA statistics Agar's Request Monitor keeps) get
    their ``c`` most distant chunks pinned, filling the cache; clients then
    populate missing pinned chunks as they read.

    Strategy name: ``lfu-<c>`` (this is the Fig. 6/7/8 baseline).

    Args:
        store: the object store.
        client_region: client/cache region.
        cache_capacity_bytes: capacity of the local cache.
        chunks_per_object: ``c`` — chunks kept per cached object.
        reconfiguration_period_s: statistics/reconfiguration period (paper: 30 s).
        alpha: EWMA weight of the current period (same convention as Agar).
        clock: optional simulated-time callable.
        config: client latency constants.
    """

    def __init__(self, store: ErasureCodedStore, client_region: str, cache_capacity_bytes: int,
                 chunks_per_object: int, reconfiguration_period_s: float = 30.0,
                 alpha: float | None = None, clock: Callable[[], float] | None = None,
                 config: ClientConfig | None = None) -> None:
        super().__init__(store, client_region, config)
        from repro.cache.policies import PinnedConfigurationPolicy
        from repro.core.agar_node import DEFAULT_CURRENT_PERIOD_WEIGHT
        from repro.core.popularity import PopularityTracker

        data_chunks = store.params.data_chunks
        if not 1 <= chunks_per_object <= data_chunks:
            raise ValueError(f"chunks_per_object must be in 1..{data_chunks}")
        self._chunks_per_object = chunks_per_object
        self.name = f"lfu-{chunks_per_object}"
        self._period_s = reconfiguration_period_s
        self._tracker = PopularityTracker(
            alpha=DEFAULT_CURRENT_PERIOD_WEIGHT if alpha is None else alpha
        )
        self._pinned_policy = PinnedConfigurationPolicy()
        self._cache = ChunkCache(
            capacity_bytes=cache_capacity_bytes,
            policy=self._pinned_policy,
            clock=clock,
            region=client_region,
        )
        self._last_reconfiguration: float | None = None
        self._external_reconfiguration = False

    @property
    def cache(self) -> ChunkCache:
        """The strategy's local chunk cache."""
        return self._cache

    @property
    def chunks_per_object(self) -> int:
        """The fixed number of chunks cached per object."""
        return self._chunks_per_object

    def cache_snapshot(self) -> CacheSnapshot:
        return self._cache.snapshot()

    @property
    def reconfiguration_period_s(self) -> float | None:
        return self._period_s

    def set_external_reconfiguration(self, external: bool) -> None:
        self._external_reconfiguration = bool(external)

    def tick(self, now: float) -> None:
        keys = self._store.keys()
        if keys:
            self._reconfigure(keys[0])
        self._last_reconfiguration = now

    def _capacity_objects(self, key: str) -> int:
        chunk_size = self._chunk_size(key)
        capacity_chunks = self._cache.capacity_bytes // chunk_size if chunk_size else 0
        return capacity_chunks // self._chunks_per_object

    def _reconfigure(self, key: str) -> None:
        popularity = self._tracker.end_period()
        top_keys = sorted(popularity, key=lambda k: (-popularity[k], k))
        top_keys = [k for k in top_keys if popularity[k] > 0][: self._capacity_objects(key)]
        pinned: set[ChunkId] = set()
        for top_key in top_keys:
            for placed in self._needed(top_key)[: self._chunks_per_object]:
                pinned.add(ChunkId(key=top_key, index=placed.index))
        self._pinned_policy.set_configuration(pinned)

    def _maybe_reconfigure(self, key: str, now: float) -> None:
        if self._last_reconfiguration is None:
            self._last_reconfiguration = now
            return
        if now - self._last_reconfiguration >= self._period_s:
            self._reconfigure(key)
            self._last_reconfiguration = now

    def read(self, key: str, now: float) -> ReadResult:
        if not self._external_reconfiguration:
            self._maybe_reconfigure(key, now)
        self._tracker.record_access(key)
        # Reconfiguration and frequency tracking are control-plane work the
        # proxy keeps doing through an AZ failure; only the cache data path
        # (lookups and fills) is unreachable.
        cache_down = self._faulted and self._cache_down

        targets = self._needed(key)[: self._chunks_per_object]
        cache_hits: list[PlacedChunk] = []
        missing_targets: list[PlacedChunk] = []
        if not cache_down:
            for placed in targets:
                if self._cache.get(ChunkId(key=key, index=placed.index)) is not None:
                    cache_hits.append(placed)
                else:
                    missing_targets.append(placed)

        exclude = {p.index for p in cache_hits}
        backend_chunks = self._backend_plan(key, exclude_indices=exclude)
        degraded = cache_down
        if self._faulted:
            backend_chunks, replanned, failed = self._degraded_backend_plan(
                key, exclude, backend_chunks
            )
            if failed:
                return self._failed_result(key, now, len(cache_hits))
            degraded = degraded or replanned
        result = self._compose_result(key, now, cache_hits, backend_chunks,
                                      degraded=degraded)

        if not cache_down:
            chunk_size = self._chunk_size(key)
            for placed in missing_targets:
                self._cache.put(
                    Chunk(chunk_id=ChunkId(key=key, index=placed.index), size=chunk_size)
                )
        return result

    def read_indexed(self, key_index: int, now: float) -> ReadResult:
        if self._faulted or self._resilience is not None:
            return self.read(self._indexed_keys[key_index], now)
        plan = self._indexed_plan(key_index)
        key = plan.key
        if not self._external_reconfiguration:
            self._maybe_reconfigure(key, now)
        self._tracker.record_access(key)
        target_count = self._chunks_per_object

        get = self._cache.get
        chunk_ids = plan.needed_chunk_ids
        hit_positions: list[int] = []
        missing_positions: list[int] = []
        for position in range(target_count):
            if get(chunk_ids[position]) is not None:
                hit_positions.append(position)
            else:
                missing_positions.append(position)

        selection = plan.selection_for_hits(tuple(hit_positions))
        result = self._compose_indexed(plan, now, len(hit_positions), selection)

        if missing_positions:
            put = self._cache.put
            chunks = plan.needed_chunks
            for position in missing_positions:
                put(chunks[position])
        return result


class AgarReadStrategy(ReadStrategy):
    """Reads driven by an Agar node's hints (paper §III, §V-A).

    Args:
        store: the object store.
        client_region: client/cache region.
        cache_capacity_bytes: capacity of the Agar-managed cache.
        node_config: Agar node tunables (reconfiguration period, alpha, ...).
        clock: optional simulated-time callable.
        config: client latency constants.
    """

    name = "agar"

    def __init__(self, store: ErasureCodedStore, client_region: str, cache_capacity_bytes: int,
                 node_config: AgarNodeConfig | None = None,
                 clock: Callable[[], float] | None = None,
                 config: ClientConfig | None = None) -> None:
        super().__init__(store, client_region, config)
        self._node = AgarNode(
            local_region=client_region,
            store=store,
            cache_capacity_bytes=cache_capacity_bytes,
            config=node_config,
            clock=clock,
        )
        # The constant the node's hints carry as processing_overhead_ms.
        self._hint_overhead_ms = self._node.request_monitor.processing_overhead_ms

    @property
    def node(self) -> AgarNode:
        """The Agar node backing this strategy."""
        return self._node

    @property
    def cache(self) -> ChunkCache:
        """The Agar-managed cache."""
        return self._node.cache

    def cache_snapshot(self) -> CacheSnapshot:
        return self._node.cache.snapshot()

    @property
    def reconfiguration_period_s(self) -> float | None:
        return self._node.config.reconfiguration_period_s

    def set_external_reconfiguration(self, external: bool) -> None:
        self._node.auto_reconfigure = not external

    def tick(self, now: float) -> None:
        self._node.reconfigure(now)

    def react_to_fault(self, now: float) -> None:
        """Fault-reactive control plane (ResilienceConfig.emergency_reconfiguration).

        Every real transition (onset, change, recovery) is stamped on the
        node so reconfiguration lag is measured whether or not the emergency
        path is enabled; with it enabled, the knapsack re-solves immediately
        against the survivor topology (down regions pushed to the Region
        Manager's estimate view — no re-probing, so no stream draws).
        """
        if not self._faulted and not self._seen_fault:
            return  # initial install of an already-clear schedule
        self._node.note_fault_transition(now)
        if self._emergency_reconfig:
            self._node.emergency_reconfigure(now, self._down_backends)

    def read(self, key: str, now: float) -> ReadResult:
        # The Agar node (popularity monitor, knapsack) is control-plane state
        # that survives an AZ failure; only the cache data path goes dark.
        hints = self._node.on_request(key, now)
        cache = self._node.cache
        cache_down = self._faulted and self._cache_down

        hinted = set(hints.cached_chunk_indices)
        cache_hits: list[PlacedChunk] = []
        missing_hinted: list[PlacedChunk] = []
        if not cache_down:
            for placed in self._needed(key):
                if placed.index not in hinted:
                    continue
                if cache.get(ChunkId(key=key, index=placed.index)) is not None:
                    cache_hits.append(placed)
                else:
                    missing_hinted.append(placed)

        # §VI: needed chunks that missed the local cache but are pinned by a
        # collaborating neighbour are read from that neighbour's cache —
        # per chunk, only when the neighbour link beats the chunk's own
        # backend link (see set_neighbor_catalog).
        exclude = {p.index for p in cache_hits}
        neighbor_chunks = 0
        catalog = self._neighbor_pinned
        if catalog is not None:
            neighbor_ms = self._neighbor_read_ms
            for placed in self._needed(key):
                if placed.index in exclude:
                    continue
                if (neighbor_ms < placed.latency_ms
                        and ChunkId(key=key, index=placed.index) in catalog):
                    neighbor_chunks += 1
                    exclude.add(placed.index)

        backend_chunks = self._backend_plan(key, exclude_indices=exclude)
        degraded = cache_down
        if self._faulted:
            backend_chunks, replanned, failed = self._degraded_backend_plan(
                key, exclude, backend_chunks
            )
            if failed:
                return self._failed_result(
                    key, now, len(cache_hits),
                    extra_overhead_ms=hints.processing_overhead_ms,
                    neighbor_chunks=neighbor_chunks,
                )
            degraded = degraded or replanned
        result = self._compose_result(
            key, now, cache_hits, backend_chunks,
            extra_overhead_ms=hints.processing_overhead_ms,
            neighbor_chunks=neighbor_chunks,
            degraded=degraded,
            hedge_exclude=(frozenset(exclude) if self._resilience is not None
                           else None),
        )

        # Write the hinted chunks the client had to fetch from the backend into
        # the cache (done by a separate thread pool in the prototype, §V-A).
        if not cache_down:
            chunk_size = self._chunk_size(key)
            fetched_indices = {placed.index for placed in backend_chunks}
            for placed in missing_hinted:
                if placed.index in fetched_indices:
                    cache.put(
                        Chunk(chunk_id=ChunkId(key=key, index=placed.index), size=chunk_size)
                    )
        return result

    def read_indexed(self, key_index: int, now: float) -> ReadResult:
        if self._faulted or self._resilience is not None:
            return self.read(self._indexed_keys[key_index], now)
        plan = self._indexed_plan(key_index)
        hinted = self._node.on_request_indices(plan.key, now)
        cache = self._node.cache

        get = cache.get
        chunk_ids = plan.needed_chunk_ids
        hit_positions: list[int] = []
        missing_positions: list[int] = []
        if hinted:
            hinted_set = set(hinted)
            for position, placed in enumerate(plan.needed):
                if placed.index not in hinted_set:
                    continue
                if get(chunk_ids[position]) is not None:
                    hit_positions.append(position)
                else:
                    missing_positions.append(position)

        catalog = self._neighbor_pinned
        if catalog is None:
            selection = plan.selection_for_hits(tuple(hit_positions))
            result = self._compose_indexed(
                plan, now, len(hit_positions), selection,
                extra_overhead_ms=self._hint_overhead_ms,
            )
        else:
            # §VI twin of the string path: local hits first, then neighbour-
            # pinned chunks (where the neighbour link beats the chunk's
            # backend link), then the backend selection over the rest.
            hit_set = set(hit_positions)
            needed = plan.needed
            neighbor_ms = self._neighbor_read_ms
            neighbor_positions = tuple(
                position for position in range(len(chunk_ids))
                if position not in hit_set
                and neighbor_ms < needed[position].latency_ms
                and chunk_ids[position] in catalog
            )
            selection = plan.selection_for_hits(tuple(hit_positions), neighbor_positions)
            result = self._compose_indexed(
                plan, now, len(hit_positions), selection,
                extra_overhead_ms=self._hint_overhead_ms,
                neighbor_count=len(neighbor_positions),
            )

        if missing_positions:
            needed = plan.needed
            fetched_indices = selection.fetched_indices
            put = cache.put
            chunks = plan.needed_chunks
            for position in missing_positions:
                if needed[position].index in fetched_indices:
                    put(chunks[position])
        return result


def is_strategy_name(name: str) -> bool:
    """True if ``name`` is a strategy :func:`make_strategy` recognises.

    Used by CLIs to validate user-supplied names (e.g. ``--region``) before
    any deployment is built; chunk-count bounds (``c <= k``) remain a
    construction-time check because they depend on the coding parameters.
    """
    if name in ("backend", "agar"):
        return True
    for prefix in ("lru-online-", "lfu-online-", "lru-", "lfu-"):
        if name.startswith(prefix):
            suffix = name[len(prefix):]
            return suffix.isdigit() and int(suffix) > 0
    return False


def make_strategy(name: str, store: ErasureCodedStore, client_region: str,
                  cache_capacity_bytes: int, clock: Callable[[], float] | None = None,
                  client_config: ClientConfig | None = None,
                  node_config: AgarNodeConfig | None = None) -> ReadStrategy:
    """Factory used by experiments: build a strategy from a short name.

    Recognised names:

    * ``"backend"`` — no caching, read straight from the backend buckets.
    * ``"agar"`` — Agar-driven reads.
    * ``"lru-<c>"`` — online LRU keeping ``c`` chunks per object (memcached-style).
    * ``"lfu-<c>"`` — the paper's LFU baseline: ``c`` chunks per object with a
      30-second reconfiguration period.
    * ``"lru-online-<c>"`` / ``"lfu-online-<c>"`` — online (cumulative) variants
      used by the ablation benchmarks.
    """
    if name == "backend":
        return BackendReadStrategy(store, client_region, client_config)
    if name == "agar":
        return AgarReadStrategy(
            store, client_region, cache_capacity_bytes,
            node_config=node_config, clock=clock, config=client_config,
        )
    for prefix in ("lru-online", "lfu-online"):
        if name.startswith(prefix + "-"):
            chunks = int(name.rsplit("-", 1)[1])
            return FixedChunkCachingStrategy(
                store, client_region, cache_capacity_bytes, chunks_per_object=chunks,
                policy=prefix.split("-")[0], clock=clock, config=client_config,
            )
    if name.startswith("lru-"):
        chunks = int(name.split("-", 1)[1])
        return FixedChunkCachingStrategy(
            store, client_region, cache_capacity_bytes, chunks_per_object=chunks,
            policy="lru", clock=clock, config=client_config,
        )
    if name.startswith("lfu-"):
        chunks = int(name.split("-", 1)[1])
        period = node_config.reconfiguration_period_s if node_config else 30.0
        return PeriodicLFUStrategy(
            store, client_region, cache_capacity_bytes, chunks_per_object=chunks,
            reconfiguration_period_s=period, clock=clock, config=client_config,
        )
    raise ValueError(f"unknown strategy {name!r}")
