"""Resilience primitives for the read path: retries, backoff, and hedging.

This module hosts the *policy* pieces of the recovery-aware resilience tier:

* :class:`ResilienceConfig` — the frozen knob block nested under
  :class:`~repro.client.strategies.ClientConfig`.  When ``active`` the read
  strategies route every read through the resilient composition path (and the
  engine's batched stateless wave dispatch steps aside, because per-read draw
  counts are no longer fixed).
* :class:`BackoffPolicy` — deterministic exponential backoff with seeded
  jitter.  The jitter is a *stateless* splitmix64 hash of
  ``(seed, read serial, attempt)`` so it never consumes the latency model's
  shared standard-normal stream; redrawn chunk samples do, exactly like every
  other variable-draw path.
* :class:`EwmaQuantileTracker` — a stochastic-approximation quantile
  estimator over observed per-link chunk latencies.  The hedging deadline for
  a backend link is the tracker's current estimate of the configured quantile
  (p95 by default); the step size adapts via an EWMA of the absolute
  deviation so the estimate tracks both the scale and drift of a link.

Everything here is pure computation over explicit state — no clocks, no
randomness beyond the seeded hash — which is what keeps the three engine
execution paths bit-identical when resilience is on.
"""

from __future__ import annotations

from dataclasses import dataclass

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def splitmix64(value: int) -> int:
    """One splitmix64 finalizer round (public-domain constants)."""
    value = (value + _GOLDEN) & _MASK64
    z = value
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def hash_unit_interval(*parts: int) -> float:
    """Deterministically hash integers into ``[0, 1)`` via splitmix64."""
    state = 0
    for part in parts:
        state = splitmix64((state ^ (part & _MASK64)) & _MASK64)
    return state / 2.0**64


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the resilient read path (retries, hedging, reconfiguration).

    Attributes:
        retry_budget: maximum retries *per read* (shared across its chunks);
            0 disables retries.
        timeout_factor: a remote chunk fetch is declared timed out when its
            sampled latency exceeds ``timeout_factor × expected`` for that
            link (expected latency includes any active brownout multiplier).
        backoff_base_ms: backoff before the first retry.
        backoff_multiplier: exponential growth factor per further attempt.
        backoff_jitter: fraction of the delay jittered away, in ``[0, 1]``;
            the jittered delay is ``delay × (1 − jitter × u)`` with ``u``
            drawn from the seeded splitmix64 hash.
        backoff_seed: seed of the backoff jitter hash.
        hedge: enable speculative extra-chunk fetches.
        hedge_quantile: deadline quantile tracked per backend link.
        hedge_ewma_alpha: step/spread EWMA weight of the quantile tracker.
        hedge_min_samples: observations a link needs before its deadline is
            trusted (hedging never fires on a cold link).
        emergency_reconfiguration: let fault transitions trigger an immediate
            knapsack re-solve against the survivor topology (Agar only),
            outside the periodic reconfiguration timer.
    """

    retry_budget: int = 0
    timeout_factor: float = 3.0
    backoff_base_ms: float = 5.0
    backoff_multiplier: float = 2.0
    backoff_jitter: float = 0.5
    backoff_seed: int = 0
    hedge: bool = False
    hedge_quantile: float = 0.95
    hedge_ewma_alpha: float = 0.05
    hedge_min_samples: int = 16
    emergency_reconfiguration: bool = False

    def __post_init__(self) -> None:
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be non-negative")
        if self.timeout_factor <= 1.0:
            raise ValueError("timeout_factor must exceed 1.0")
        if self.backoff_base_ms < 0.0:
            raise ValueError("backoff_base_ms must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be at least 1.0")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be in [0, 1]")
        if not 0.0 < self.hedge_quantile < 1.0:
            raise ValueError("hedge_quantile must be in (0, 1)")
        if not 0.0 < self.hedge_ewma_alpha <= 1.0:
            raise ValueError("hedge_ewma_alpha must be in (0, 1]")
        if self.hedge_min_samples < 1:
            raise ValueError("hedge_min_samples must be positive")

    @property
    def active(self) -> bool:
        """Whether the read path must route through resilient composition."""
        return self.retry_budget > 0 or self.hedge


class BackoffPolicy:
    """Deterministic exponential backoff with seeded multiplicative jitter.

    ``delay_ms(serial, attempt)`` for ``attempt ≥ 1`` is::

        base × multiplier^(attempt−1) × (1 − jitter × u)

    where ``u ∈ [0, 1)`` hashes ``(seed, serial, attempt)``.  The same
    ``(seed, serial, attempt)`` triple always yields the same delay, on any
    execution path, which is what the bit-identity contract needs.
    """

    __slots__ = ("base_ms", "multiplier", "jitter", "seed")

    def __init__(self, base_ms: float = 5.0, multiplier: float = 2.0,
                 jitter: float = 0.5, seed: int = 0) -> None:
        if base_ms < 0.0:
            raise ValueError("base_ms must be non-negative")
        if multiplier < 1.0:
            raise ValueError("multiplier must be at least 1.0")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.base_ms = float(base_ms)
        self.multiplier = float(multiplier)
        self.jitter = float(jitter)
        self.seed = int(seed)

    @classmethod
    def from_config(cls, config: ResilienceConfig) -> "BackoffPolicy":
        return cls(
            base_ms=config.backoff_base_ms,
            multiplier=config.backoff_multiplier,
            jitter=config.backoff_jitter,
            seed=config.backoff_seed,
        )

    def delay_ms(self, serial: int, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of read ``serial``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = self.base_ms * self.multiplier ** (attempt - 1)
        if self.jitter > 0.0 and delay > 0.0:
            delay *= 1.0 - self.jitter * hash_unit_interval(self.seed, serial, attempt)
        return delay


class EwmaQuantileTracker:
    """Streaming quantile estimate with an EWMA-adapted step size.

    Classic stochastic approximation: the estimate moves up by
    ``step × q`` when an observation lands at/above it and down by
    ``step × (1 − q)`` otherwise, so at equilibrium a fraction ``1 − q`` of
    observations exceed the estimate — i.e. the estimate is the q-quantile.
    ``step`` is ``alpha`` times an EWMA of the absolute deviation, so the
    tracker scales itself to each link's latency spread and follows drift
    (e.g. a brownout) at the EWMA's own time constant.
    """

    __slots__ = ("quantile", "alpha", "min_samples", "_estimate", "_spread", "_count")

    def __init__(self, quantile: float = 0.95, alpha: float = 0.05,
                 min_samples: int = 16) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if min_samples < 1:
            raise ValueError("min_samples must be positive")
        self.quantile = float(quantile)
        self.alpha = float(alpha)
        self.min_samples = int(min_samples)
        self._estimate = 0.0
        self._spread = 0.0
        self._count = 0

    @classmethod
    def from_config(cls, config: ResilienceConfig) -> "EwmaQuantileTracker":
        return cls(
            quantile=config.hedge_quantile,
            alpha=config.hedge_ewma_alpha,
            min_samples=config.hedge_min_samples,
        )

    @property
    def count(self) -> int:
        return self._count

    @property
    def estimate(self) -> float:
        """Current quantile estimate (0.0 before the first observation)."""
        return self._estimate

    @property
    def ready(self) -> bool:
        """Whether enough samples accumulated to trust the estimate."""
        return self._count >= self.min_samples

    def observe(self, value: float) -> None:
        """Fold one latency observation (ms) into the estimate."""
        value = float(value)
        if self._count == 0:
            self._estimate = value
        else:
            deviation = abs(value - self._estimate)
            self._spread += self.alpha * (deviation - self._spread)
            step = self.alpha * max(self._spread, 1e-9)
            if value >= self._estimate:
                self._estimate += step * self.quantile
            else:
                self._estimate -= step * (1.0 - self.quantile)
        self._count += 1

    def deadline(self) -> float | None:
        """The hedge deadline, or ``None`` while the link is cold."""
        return self._estimate if self.ready else None
