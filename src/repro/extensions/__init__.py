"""Extensions sketched in the paper's discussion section (§VI).

* :mod:`repro.extensions.collaboration` — content exchange between nearby caches.
* :mod:`repro.extensions.writes` — write-through writes with cache coherence.
* :mod:`repro.extensions.tinylfu` — approximate request statistics (count-min sketch).
"""

from repro.extensions.collaboration import (
    CollaborationCoordinator,
    NeighborAnnouncement,
    discount_options,
)
from repro.extensions.tinylfu import (
    ApproximatePopularityTracker,
    CountMinSketch,
    SketchParameters,
)
from repro.extensions.writes import (
    CoherenceStats,
    StaleWriteError,
    WriteCoordinator,
    WriteRecord,
)

__all__ = [
    "ApproximatePopularityTracker",
    "CoherenceStats",
    "CollaborationCoordinator",
    "CountMinSketch",
    "NeighborAnnouncement",
    "SketchParameters",
    "StaleWriteError",
    "WriteCoordinator",
    "WriteRecord",
    "discount_options",
]
