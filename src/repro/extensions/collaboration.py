"""Cache collaboration between nearby regions (paper §VI).

The paper sketches a first step towards collaborating caches: "Agar nodes
could broadcast their contents and workload statistics periodically, in order
to let nearby caches update the values of each cache option accordingly".

This extension implements that step:

* :class:`NeighborAnnouncement` — what a node broadcasts (its region and the
  chunk ids its current configuration pins);
* :func:`discount_options` — re-values a node's caching options given what
  neighbours already cache: chunks available at a nearby cache can be fetched
  at the neighbour-cache latency instead of the backend latency, so caching
  them locally is worth less;
* :func:`reconfigure_node` — one node's share of a collaborative round: close
  the popularity period, generate options, discount them by the neighbours'
  announcements, solve the knapsack and install the result.  This is the unit
  the sharded engine executes inside per-region worker processes;
* :class:`CollaborationCoordinator` — wires several :class:`AgarNode` instances
  together, performing the periodic exchange and the discounted
  reconfiguration for each node.

The sharded execution path (``EventEngine.execute_sharded``) distributes the
coordinator's round over per-region workers: the parent collects every
worker's announcement, then walks the regions in order, sending each worker
its neighbours' *current* announcements and applying :func:`reconfigure_node`
worker-side — the exact staggered-round semantics of
:meth:`CollaborationCoordinator.reconfigure_all`, with pipes instead of
shared memory.  See ``docs/collaboration.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from repro.core.agar_node import AgarNode
from repro.core.knapsack import KnapsackSolver
from repro.core.options import CachingOption
from repro.erasure.chunk import ChunkId


@dataclass(frozen=True)
class NeighborAnnouncement:
    """One node's periodic broadcast to its neighbours."""

    region: str
    pinned_chunks: frozenset[ChunkId]

    def has_chunk(self, key: str, index: int) -> bool:
        """True if the announcing cache pins this chunk."""
        return ChunkId(key=key, index=index) in self.pinned_chunks


def discount_options(options_by_key: Mapping[str, Sequence[CachingOption]],
                     announcements: Sequence[NeighborAnnouncement],
                     neighbor_read_ms: float,
                     local_backend_floor_ms: float = 0.0) -> dict[str, list[CachingOption]]:
    """Re-value caching options given what neighbouring caches already hold.

    For each option, the chunks that a neighbour already pins could be read
    from that neighbour at ``neighbor_read_ms`` instead of from the backend.
    The option's latency improvement is therefore reduced in proportion to the
    fraction of its chunks already available nearby (they were going to be
    cheap anyway), but never below ``local_backend_floor_ms`` of improvement.

    The discount *strength* is modulated by the neighbour's cost relative to
    the option's own latencies: an option improves the read from
    ``residual + improvement`` (the furthest source contacted with no local
    caching) down to ``residual``; a neighbour can only deliver the part of
    that improvement its read latency actually undercuts, so the per-chunk
    strength is::

        strength = clamp((residual + improvement - neighbor_read_ms)
                         / improvement, 0, 1)

    A free neighbour (``neighbor_read_ms`` at or below the residual) gives the
    full proportional discount; a neighbour as slow as the un-cached read path
    gives none — very expensive neighbours no longer suppress local caching of
    chunks they cannot serve competitively.  Strength is monotonically
    non-increasing in ``neighbor_read_ms`` (asserted in the unit tests).

    Args:
        options_by_key: the node's locally generated options.
        announcements: the latest broadcast of every neighbour.
        neighbor_read_ms: estimated latency of reading a chunk from a
            neighbouring region's cache.
        local_backend_floor_ms: lower bound on the per-option improvement kept
            after discounting (0 keeps pure proportional discounting).

    Returns:
        A new options map with adjusted ``latency_improvement_ms`` values.
    """
    if neighbor_read_ms < 0:
        raise ValueError("neighbor_read_ms must be non-negative")

    discounted: dict[str, list[CachingOption]] = {}
    for key, options in options_by_key.items():
        new_options = []
        for option in options:
            improvement = option.latency_improvement_ms
            if option.weight == 0 or improvement <= 0.0:
                new_options.append(option)
                continue
            covered = sum(
                1
                for index in option.chunk_indices
                if any(announcement.has_chunk(key, index) for announcement in announcements)
            )
            if covered == 0:
                new_options.append(option)
                continue
            coverage = covered / option.weight
            headroom = option.residual_latency_ms + improvement - neighbor_read_ms
            strength = min(max(headroom / improvement, 0.0), 1.0)
            adjusted = max(improvement * (1.0 - coverage * strength),
                           local_backend_floor_ms)
            new_options.append(replace(option, latency_improvement_ms=adjusted))
        discounted[key] = new_options
    return discounted


def announcement_of(node: AgarNode) -> NeighborAnnouncement:
    """The announcement ``node`` would broadcast right now."""
    return NeighborAnnouncement(
        region=node.local_region,
        pinned_chunks=node.current_configuration.chunk_ids(),
    )


def reconfigure_node(node: AgarNode, neighbours: Sequence[NeighborAnnouncement],
                     neighbor_read_ms: float) -> int:
    """Run one node's share of a collaborative reconfiguration round.

    Closes the node's popularity period, generates its caching options,
    discounts them by the neighbours' announcements, solves the knapsack and
    installs the resulting configuration.  Both the in-process coordinator
    and the sharded engine's per-region workers call exactly this function,
    which is what keeps the two execution paths bit-identical.

    Returns the number of configured (pinned) chunks.
    """
    popularity = node.request_monitor.end_period()
    manager = node.cache_manager
    options = manager.generate_options(popularity)
    discounted = discount_options(options, neighbours, neighbor_read_ms)
    solver = KnapsackSolver(capacity_weight=manager.capacity_chunks)
    best = solver.solve_configuration(discounted)
    manager.install(best)
    return best.weight


def overlap_between(announcements: Sequence[NeighborAnnouncement]
                    ) -> dict[tuple[str, str], int]:
    """Identical pinned chunks per region pair (lower = better use of space)."""
    report: dict[tuple[str, str], int] = {}
    for i, first in enumerate(announcements):
        for second in announcements[i + 1:]:
            shared = len(first.pinned_chunks & second.pinned_chunks)
            report[(first.region, second.region)] = shared
    return report


class CollaborationCoordinator:
    """Periodic content exchange between the Agar nodes of nearby regions.

    Args:
        nodes: the participating Agar nodes (typically regions of the same
            continent, e.g. Frankfurt and Dublin).
        neighbor_read_ms: latency of a cross-region cache read used when
            discounting option values — either a single flat estimate or a
            per-region mapping (each node discounts with its own entry, the
            expected latency of reading from its nearest partner's cache).
    """

    def __init__(self, nodes: Sequence[AgarNode],
                 neighbor_read_ms: float | Mapping[str, float] = 120.0) -> None:
        if not nodes:
            raise ValueError("at least one node is required")
        regions = [node.local_region for node in nodes]
        if len(set(regions)) != len(regions):
            raise ValueError("each node must serve a distinct region")
        self._nodes = list(nodes)
        self._neighbor_read_ms = neighbor_read_ms
        self._announcements: dict[str, NeighborAnnouncement] = {}

    def _discount_for(self, region: str) -> float:
        """The neighbour-read estimate ``region``'s node discounts with."""
        estimate = self._neighbor_read_ms
        if isinstance(estimate, Mapping):
            return estimate[region]
        return estimate

    @property
    def regions(self) -> list[str]:
        """Regions participating in the collaboration."""
        return [node.local_region for node in self._nodes]

    def announcements(self) -> list[NeighborAnnouncement]:
        """The latest announcement of every node."""
        return list(self._announcements.values())

    def broadcast(self) -> list[NeighborAnnouncement]:
        """Collect every node's current configuration into announcements."""
        self._announcements = {
            node.local_region: announcement_of(node) for node in self._nodes
        }
        return self.announcements()

    def install_announcements(self, announcements: Sequence[NeighborAnnouncement]) -> None:
        """Record externally collected announcements (replaces the current set).

        The sharded engine uses this to publish the final configurations its
        per-region workers reported, so a caller holding the (cold) parent
        deployment can still inspect the run's overlap via
        :meth:`latest_overlap`.
        """
        self._announcements = {
            announcement.region: announcement for announcement in announcements
        }

    def reconfigure_all(self, now: float) -> dict[str, int]:
        """Run one collaborative reconfiguration round.

        Nodes reconfigure one at a time (a staggered round, which is how the
        30-second periods of independent nodes interleave in practice): each
        node closes its popularity period, generates options, discounts them by
        the *current* configuration of every other node — including nodes that
        already reconfigured earlier in this round — solves the knapsack and
        installs the result.  Processing nodes sequentially avoids the
        oscillation that simultaneous mutual discounting would cause.

        Returns the number of configured chunks per region.
        """
        configured: dict[str, int] = {}
        for node in self._nodes:
            neighbours = [
                announcement_of(other)
                for other in self._nodes
                if other.local_region != node.local_region
            ]
            configured[node.local_region] = reconfigure_node(
                node, neighbours, self._discount_for(node.local_region)
            )
        self.broadcast()
        return configured

    def overlap_report(self) -> dict[tuple[str, str], int]:
        """Number of identical pinned chunks per region pair (lower = better use of space)."""
        return overlap_between(self.broadcast())

    def latest_overlap(self) -> dict[tuple[str, str], int]:
        """Overlap of the latest *recorded* announcements, without re-broadcasting.

        Unlike :meth:`overlap_report` this does not read the nodes' live
        configurations, so it reflects announcements installed via
        :meth:`install_announcements` — what a sharded run's workers last
        reported — rather than the parent's untouched node copies.
        """
        return overlap_between(self.announcements())
