"""Write support with cache coherence (paper §VI).

The paper's evaluation is read-only, but §VI envisions supporting writes by
adding a cache-coherence mechanism.  This extension implements the design the
related-work section attributes to CAROM: every object has a *primary region*
that totally orders its writes; writes are encoded, written through to the
backend with a new version number, and the primary then invalidates stale
cached chunks in every region's cache.

The extension is deliberately synchronous and single-writer-per-object — the
simplest protocol that keeps the read path (which may serve cached chunks)
version-consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.backend.object_store import ErasureCodedStore
from repro.backend.placement import RoundRobinPlacement
from repro.cache.chunk_cache import ChunkCache
from repro.erasure.chunk import ChunkId


class StaleWriteError(ValueError):
    """Raised when a write presents a version older than the stored one."""


@dataclass
class WriteRecord:
    """Book-keeping about one committed write."""

    key: str
    version: int
    primary_region: str
    invalidated_chunks: int
    bytes_written: int


@dataclass
class CoherenceStats:
    """Counters of the coherence protocol."""

    writes: int = 0
    invalidations_sent: int = 0
    chunks_invalidated: int = 0
    stale_writes_rejected: int = 0
    history: list[WriteRecord] = field(default_factory=list)


class WriteCoordinator:
    """Write-through writes with primary-region invalidation.

    Args:
        store: the erasure-coded backend store.
        caches: mapping region → that region's chunk cache (the caches Agar or
            the baselines manage).  Caches are invalidated, never written, by
            the coordinator — clients re-populate them on later reads.
        primary_placement: optional explicit mapping key → primary region; by
            default the primary is the region hosting the object's first chunk
            (stable under the round-robin placement of Fig. 1).
    """

    def __init__(self, store: ErasureCodedStore, caches: Mapping[str, ChunkCache],
                 primary_placement: Mapping[str, str] | None = None) -> None:
        unknown = [region for region in caches if not store.topology.has_region(region)]
        if unknown:
            raise ValueError(f"caches reference unknown regions: {unknown}")
        self._store = store
        self._caches = dict(caches)
        self._primaries = dict(primary_placement or {})
        self._versions: dict[str, int] = {}
        self.stats = CoherenceStats()

    # ------------------------------------------------------------------ #
    # Primary assignment and versions
    # ------------------------------------------------------------------ #
    def primary_region(self, key: str) -> str:
        """The region that orders writes for ``key``."""
        if key in self._primaries:
            return self._primaries[key]
        if key in self._store:
            return self._store.chunk_region(key, 0)
        placement = RoundRobinPlacement().place(key, self._store.params.total_chunks,
                                                 self._store.topology.region_names)
        return placement[0]

    def current_version(self, key: str) -> int:
        """Latest committed version of ``key`` (0 if never written here)."""
        return self._versions.get(key, 0)

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #
    def write(self, key: str, data: bytes, expected_version: int | None = None) -> WriteRecord:
        """Write-through a new value of ``key`` and invalidate cached chunks.

        Args:
            key: object key.
            data: new object payload (encoded through the store's codec).
            expected_version: optional optimistic-concurrency check; the write
                is rejected if the current version differs.

        Raises:
            StaleWriteError: if ``expected_version`` is given and stale.
        """
        current = self.current_version(key)
        if expected_version is not None and expected_version != current:
            self.stats.stale_writes_rejected += 1
            raise StaleWriteError(
                f"write to {key!r} expected version {expected_version}, current is {current}"
            )

        new_version = current + 1
        self._store.put(key, data, version=new_version)
        self._versions[key] = new_version
        invalidated = self._invalidate(key)

        record = WriteRecord(
            key=key,
            version=new_version,
            primary_region=self.primary_region(key),
            invalidated_chunks=invalidated,
            bytes_written=len(data),
        )
        self.stats.writes += 1
        self.stats.history.append(record)
        return record

    def write_virtual(self, key: str, object_size: int,
                      expected_version: int | None = None) -> WriteRecord:
        """Metadata-only variant of :meth:`write` for simulation-scale objects."""
        current = self.current_version(key)
        if expected_version is not None and expected_version != current:
            self.stats.stale_writes_rejected += 1
            raise StaleWriteError(
                f"write to {key!r} expected version {expected_version}, current is {current}"
            )
        new_version = current + 1
        self._store.put_virtual(key, object_size, version=new_version)
        self._versions[key] = new_version
        invalidated = self._invalidate(key)
        record = WriteRecord(
            key=key,
            version=new_version,
            primary_region=self.primary_region(key),
            invalidated_chunks=invalidated,
            bytes_written=object_size,
        )
        self.stats.writes += 1
        self.stats.history.append(record)
        return record

    def _invalidate(self, key: str) -> int:
        """Remove every cached chunk of ``key`` from every region's cache."""
        invalidated = 0
        for cache in self._caches.values():
            for index in cache.cached_indices(key):
                if cache.delete(ChunkId(key=key, index=index)):
                    invalidated += 1
        if self._caches:
            self.stats.invalidations_sent += len(self._caches)
        self.stats.chunks_invalidated += invalidated
        return invalidated

    # ------------------------------------------------------------------ #
    # Read-side helper
    # ------------------------------------------------------------------ #
    def is_cache_consistent(self, key: str) -> bool:
        """True if no cache holds chunks of an older version of ``key``.

        With the synchronous invalidation above this always holds after a
        write returns; the check exists for tests and for asynchronous
        variants users may build on top.
        """
        current = self.current_version(key)
        for cache in self._caches.values():
            for index in cache.cached_indices(key):
                chunk = cache.get(ChunkId(key=key, index=index))
                if chunk is not None and chunk.version < current:
                    return False
        return True
