"""TinyLFU-style approximate request statistics (paper §III-b, §VII-A).

The paper notes that for large deployments the Request Monitor could use
TinyLFU-like approximate access statistics to avoid becoming a bottleneck.
This module provides:

* :class:`CountMinSketch` — a conservative-update count-min sketch;
* :class:`ApproximatePopularityTracker` — a drop-in replacement for
  :class:`repro.core.popularity.PopularityTracker` that keeps per-period
  frequencies in the sketch instead of an exact dictionary, plus a bounded
  catalog of "interesting" keys whose EWMA popularity is tracked exactly.

The tracker can be handed to :class:`repro.core.request_monitor.RequestMonitor`
via its ``tracker`` argument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.popularity import DEFAULT_ALPHA, PopularityTracker


@dataclass(frozen=True)
class SketchParameters:
    """Size of a count-min sketch.

    Attributes:
        width: counters per row (error ∝ total count / width).
        depth: number of hash rows (failure probability ∝ exp(-depth)).
    """

    width: int = 1024
    depth: int = 4

    def __post_init__(self) -> None:
        if self.width <= 0 or self.depth <= 0:
            raise ValueError("width and depth must be positive")


class CountMinSketch:
    """Count-min sketch with conservative update over string keys."""

    #: Large odd multipliers for the per-row hash mix.
    _MIXERS = (0x9E3779B97F4A7C15, 0xC2B2AE3D27D4EB4F, 0x165667B19E3779F9, 0x27D4EB2F165667C5,
               0x85EBCA77C2B2AE63, 0x2545F4914F6CDD1D, 0x9E3779B185EBCA87, 0xFF51AFD7ED558CCD)

    def __init__(self, params: SketchParameters | None = None) -> None:
        self._params = params or SketchParameters()
        if self._params.depth > len(self._MIXERS):
            raise ValueError(f"depth must not exceed {len(self._MIXERS)}")
        self._table = np.zeros((self._params.depth, self._params.width), dtype=np.int64)
        self._total = 0

    @property
    def params(self) -> SketchParameters:
        """The sketch dimensions."""
        return self._params

    @property
    def total_count(self) -> int:
        """Total number of increments recorded."""
        return self._total

    def _indices(self, key: str) -> list[int]:
        base = _fnv1a(key)
        indices = []
        for row in range(self._params.depth):
            mixed = (base ^ self._MIXERS[row]) * 0x100000001B3 & 0xFFFFFFFFFFFFFFFF
            indices.append(mixed % self._params.width)
        return indices

    def add(self, key: str, count: int = 1) -> None:
        """Record ``count`` occurrences of ``key`` (conservative update)."""
        if count <= 0:
            return
        indices = self._indices(key)
        current = min(int(self._table[row, index]) for row, index in enumerate(indices))
        target = current + count
        for row, index in enumerate(indices):
            if self._table[row, index] < target:
                self._table[row, index] = target
        self._total += count

    def estimate(self, key: str) -> int:
        """Estimated count of ``key`` (never under-estimates)."""
        return min(int(self._table[row, index]) for row, index in enumerate(self._indices(key)))

    def halve(self) -> None:
        """Divide all counters by two (TinyLFU's periodic aging)."""
        self._table >>= 1
        self._total //= 2

    def reset(self) -> None:
        """Clear the sketch."""
        self._table.fill(0)
        self._total = 0


class ApproximatePopularityTracker(PopularityTracker):
    """EWMA popularity on top of a count-min sketch and a bounded key catalog.

    Per-period frequencies are recorded in the sketch (constant memory); only
    keys that have been seen at least ``catalog_threshold`` times in the
    current period enter the exact catalog whose EWMA popularity is reported
    to the Cache Manager.  The catalog is capped at ``max_tracked_keys`` to
    bound memory, evicting the least popular entries.

    Args:
        alpha: EWMA weight of the current period's frequency.
        params: sketch dimensions.
        max_tracked_keys: catalog capacity.
        catalog_threshold: per-period estimate needed to enter the catalog.
    """

    def __init__(self, alpha: float = DEFAULT_ALPHA, params: SketchParameters | None = None,
                 max_tracked_keys: int = 256, catalog_threshold: int = 1) -> None:
        super().__init__(alpha=alpha)
        if max_tracked_keys <= 0:
            raise ValueError("max_tracked_keys must be positive")
        self._sketch = CountMinSketch(params)
        self._max_tracked_keys = max_tracked_keys
        self._catalog_threshold = catalog_threshold
        self._candidates: set[str] = set()

    @property
    def sketch(self) -> CountMinSketch:
        """The underlying count-min sketch."""
        return self._sketch

    def record_access(self, key: str, count: int = 1) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self._sketch.add(key, count)
        if self._sketch.estimate(key) >= self._catalog_threshold:
            self._candidates.add(key)

    def current_frequency(self, key: str) -> int:
        return self._sketch.estimate(key)

    def known_keys(self) -> set[str]:
        return set(self._popularity) | set(self._candidates)

    def end_period(self) -> dict[str, float]:
        # Fold the sketch estimates of catalogued keys into the exact EWMA.
        for key in self._candidates:
            super().record_access(key, self._sketch.estimate(key))
        result = super().end_period()

        # Cap the catalog, dropping the least popular keys.
        if len(result) > self._max_tracked_keys:
            ranked = sorted(result, key=lambda key: (-result[key], key))
            for key in ranked[self._max_tracked_keys:]:
                self.forget(key)
                result.pop(key, None)

        self._candidates.clear()
        self._sketch.halve()
        return result


def _fnv1a(text: str) -> int:
    """64-bit FNV-1a hash (stable across processes, unlike ``hash``)."""
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value
