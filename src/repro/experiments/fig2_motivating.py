"""Figure 2 — average read latency vs. number of cached chunks.

The motivating experiment (§II-C): an effectively infinite cache per region
stores a fixed number of data chunks ``c`` for every object it has seen, with
``c`` swept over {0, 1, 3, 5, 7, 9}.  ``c = 0`` is the no-cache baseline that
reads straight from the backend.  The paper runs it from Frankfurt and Sydney
and observes that the latency gain is a non-linear function of ``c``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import Table
from repro.experiments.common import FIG2_CHUNK_COUNTS, MEGABYTE, ExperimentSettings
from repro.sim.simulation import Simulation, SimulationConfig

#: Cache size that comfortably fits the full working set — the paper gives each
#: memcached instance 500 MB, "in practice emulating an infinite cache".
INFINITE_CACHE_BYTES = 500 * MEGABYTE


@dataclass(frozen=True)
class Fig2Point:
    """One bar of Fig. 2: a region and a cached-chunk count."""

    region: str
    cached_chunks: int
    mean_latency_ms: float
    hit_ratio: float


def run_fig2(settings: ExperimentSettings | None = None,
             regions: tuple[str, ...] = ("frankfurt", "sydney"),
             chunk_counts: tuple[int, ...] = FIG2_CHUNK_COUNTS) -> list[Fig2Point]:
    """Run the motivating experiment and return one point per (region, c)."""
    settings = settings or ExperimentSettings.quick()
    workload = settings.workload(skew=1.1)
    points = []
    for region in regions:
        for cached_chunks in chunk_counts:
            strategy = "backend" if cached_chunks == 0 else f"lru-{cached_chunks}"
            config = SimulationConfig(
                workload=workload,
                client_region=region,
                strategy=strategy,
                cache_capacity_bytes=INFINITE_CACHE_BYTES,
                topology_seed=settings.seed,
            )
            result = Simulation(config).run_many(runs=settings.runs)
            points.append(
                Fig2Point(
                    region=region,
                    cached_chunks=cached_chunks,
                    mean_latency_ms=result.mean_latency_ms,
                    hit_ratio=result.hit_ratio,
                )
            )
    return points


def render_fig2(points: list[Fig2Point]) -> Table:
    """Render Fig. 2 as a table with one row per chunk count, one column per region."""
    regions = sorted({point.region for point in points})
    chunk_counts = sorted({point.cached_chunks for point in points})
    lookup = {(point.region, point.cached_chunks): point.mean_latency_ms for point in points}
    table = Table(
        title="Figure 2 — average read latency (ms) vs. cached data chunks",
        columns=("cached chunks", *regions),
    )
    for count in chunk_counts:
        table.add_row(count, *[lookup[(region, count)] for region in regions])
    return table


def nonlinearity_check(points: list[Fig2Point], region: str) -> dict[str, float]:
    """Quantify the non-linearity the paper highlights for one region.

    Returns the marginal latency reduction of the first half of the chunk
    sweep versus the second half; a linear relationship would make them equal.
    """
    series = sorted(
        (point for point in points if point.region == region),
        key=lambda point: point.cached_chunks,
    )
    if len(series) < 3:
        raise ValueError("need at least three chunk counts to assess non-linearity")
    latencies = [point.mean_latency_ms for point in series]
    middle = len(latencies) // 2
    first_half_gain = latencies[0] - latencies[middle]
    second_half_gain = latencies[middle] - latencies[-1]
    total_gain = latencies[0] - latencies[-1]
    return {
        "total_gain_ms": total_gain,
        "first_half_gain_ms": first_half_gain,
        "second_half_gain_ms": second_half_gain,
        "first_half_share": first_half_gain / total_gain if total_gain else 0.0,
    }
