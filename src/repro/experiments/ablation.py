"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's figures and quantify:

* solver quality — the paper's DP heuristic vs. the exact MCKP optimum vs. the
  greedy baselines (§II-D argues greedy is inadequate);
* the EWMA interpretation — weight of the current period in the popularity
  EWMA (see DESIGN.md §3);
* the relaxation step — running the DP with and without RELAX;
* the LFU baseline interpretation — the paper's periodic LFU vs. an online
  cumulative LFU.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exact import optimality_gap, solve_exact
from repro.core.greedy import solve_greedy_density, solve_greedy_marginal
from repro.core.knapsack import KnapsackSolver
from repro.core.options import CachingOption, generate_caching_options
from repro.core.agar_node import AgarNodeConfig
from repro.experiments.common import ExperimentSettings
from repro.geo.topology import default_topology
from repro.sim.simulation import Simulation, SimulationConfig
from repro.workload.zipfian import ZipfianDistribution


@dataclass(frozen=True)
class SolverQualityRow:
    """Heuristic/greedy value relative to the exact optimum for one capacity."""

    capacity_chunks: int
    heuristic_gap_pct: float
    heuristic_no_relax_gap_pct: float
    greedy_density_gap_pct: float
    greedy_marginal_gap_pct: float


def synthetic_options(object_count: int = 60, skew: float = 1.1, seed: int = 7,
                      client_region: str = "frankfurt") -> dict[str, list[CachingOption]]:
    """Caching options for a synthetic Zipf-popular object population."""
    topology = default_topology(seed=seed)
    latencies = topology.expected_read_latencies(client_region)
    regions = topology.region_names
    distribution = ZipfianDistribution(object_count, skew=skew, seed=seed)
    probabilities = distribution.probabilities()

    options_by_key: dict[str, list[CachingOption]] = {}
    for rank in range(object_count):
        key = f"object-{rank}"
        chunks_by_region = {region: [index, index + len(regions)] for index, region in enumerate(regions)}
        options_by_key[key] = generate_caching_options(
            key=key,
            chunks_by_region=chunks_by_region,
            region_latencies=latencies,
            popularity=float(probabilities[rank] * 1000.0),
            data_chunks=9,
            parity_chunks=3,
            cache_read_ms=20.0,
        )
    return options_by_key


def run_solver_quality(capacities: tuple[int, ...] = (18, 45, 90, 180),
                       object_count: int = 60, seed: int = 7) -> list[SolverQualityRow]:
    """Compare the DP heuristic and the greedy baselines against the exact optimum."""
    options_by_key = synthetic_options(object_count=object_count, seed=seed)
    rows = []
    for capacity in capacities:
        exact = solve_exact(options_by_key, capacity)
        heuristic = KnapsackSolver(capacity).solve_configuration(options_by_key)
        no_relax = KnapsackSolver(capacity, use_relax=False).solve_configuration(options_by_key)
        greedy_density = solve_greedy_density(options_by_key, capacity)
        greedy_marginal = solve_greedy_marginal(options_by_key, capacity)
        rows.append(
            SolverQualityRow(
                capacity_chunks=capacity,
                heuristic_gap_pct=optimality_gap(heuristic.value, exact.value) * 100.0,
                heuristic_no_relax_gap_pct=optimality_gap(no_relax.value, exact.value) * 100.0,
                greedy_density_gap_pct=optimality_gap(greedy_density.value, exact.value) * 100.0,
                greedy_marginal_gap_pct=optimality_gap(greedy_marginal.value, exact.value) * 100.0,
            )
        )
    return rows


@dataclass(frozen=True)
class AgarVariantRow:
    """Average latency of one Agar variant under the default workload."""

    variant: str
    mean_latency_ms: float
    hit_ratio: float


def run_agar_variants(settings: ExperimentSettings | None = None,
                      client_region: str = "frankfurt") -> list[AgarVariantRow]:
    """Compare Agar configurations: EWMA weight, reconfiguration period, relaxation."""
    settings = settings or ExperimentSettings.quick()
    workload = settings.workload(skew=1.1)
    variants: dict[str, AgarNodeConfig] = {
        "default (alpha=0.2, 30s)": AgarNodeConfig(),
        "literal alpha=0.8": AgarNodeConfig(alpha=0.8),
        "period=60s": AgarNodeConfig(reconfiguration_period_s=60.0),
        "period=10s": AgarNodeConfig(reconfiguration_period_s=10.0),
    }
    rows = []
    for label, node_config in variants.items():
        config = SimulationConfig(
            workload=workload,
            client_region=client_region,
            strategy="agar",
            cache_capacity_bytes=settings.cache_capacity_bytes,
            agar=node_config,
            topology_seed=settings.seed,
        )
        aggregate = Simulation(config).run_many(runs=settings.runs)
        rows.append(
            AgarVariantRow(
                variant=label,
                mean_latency_ms=aggregate.mean_latency_ms,
                hit_ratio=aggregate.hit_ratio,
            )
        )

    # Baseline interpretations of LFU (periodic vs cumulative/online).
    for strategy, label in (("lfu-7", "paper LFU-7 (periodic)"), ("lfu-online-7", "online LFU-7")):
        config = SimulationConfig(
            workload=workload,
            client_region=client_region,
            strategy=strategy,
            cache_capacity_bytes=settings.cache_capacity_bytes,
            topology_seed=settings.seed,
        )
        aggregate = Simulation(config).run_many(runs=settings.runs)
        rows.append(
            AgarVariantRow(
                variant=label,
                mean_latency_ms=aggregate.mean_latency_ms,
                hit_ratio=aggregate.hit_ratio,
            )
        )
    return rows


def mean_gap(rows: list[SolverQualityRow], field: str) -> float:
    """Average optimality gap across capacities for one solver column."""
    return float(np.mean([getattr(row, field) for row in rows])) if rows else 0.0
