"""Shared configuration for the paper-reproduction experiments.

Every experiment driver in this package regenerates one table or figure of the
paper.  They all consume an :class:`ExperimentSettings` instance so the same
code can run either at the paper's scale (300 objects, 1,000 reads, 5 runs) or
in a faster "quick" mode used by the benchmark suite and CI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.client.strategies import is_strategy_name
from repro.core.agar_node import AgarNodeConfig
from repro.core.cache_manager import CacheManagerConfig
from repro.geo.latency import DEFAULT_OBJECT_SIZE
from repro.sim.engine import RegionSpec
from repro.workload.workload import (
    ArrivalSpec,
    WorkloadSpec,
    poisson_arrivals,
    uniform_workload,
    zipfian_workload,
)

#: 1 MiB, the paper's object size.
MEGABYTE = 1024 * 1024

#: The strategy line-up of Fig. 6 / Fig. 7.
FIG6_STRATEGIES: tuple[str, ...] = (
    "agar",
    "lru-1", "lru-3", "lru-5", "lru-7", "lru-9",
    "lfu-1", "lfu-3", "lfu-5", "lfu-7", "lfu-9",
    "backend",
)

#: The reduced strategy line-up of Fig. 8 (the paper plots Agar, LRU/LFU-5/9).
FIG8_STRATEGIES: tuple[str, ...] = ("agar", "lru-5", "lru-9", "lfu-5", "lfu-9")

#: Cache sizes swept in Fig. 8a (MB).  The paper also shows the 0 MB backend bar.
FIG8A_CACHE_SIZES_MB: tuple[int, ...] = (5, 10, 20, 50, 100)

#: Zipfian skews swept in Fig. 8b (plus the uniform workload).
FIG8B_SKEWS: tuple[float, ...] = (0.2, 0.5, 0.8, 0.9, 1.0, 1.1, 1.4)

#: Skews plotted in Fig. 9.
FIG9_SKEWS: tuple[float, ...] = (0.5, 0.8, 1.1, 1.4)

#: Chunk counts swept in the Fig. 2 motivating experiment.
FIG2_CHUNK_COUNTS: tuple[int, ...] = (0, 1, 3, 5, 7, 9)

#: Client regions used throughout the evaluation.
EVALUATION_REGIONS: tuple[str, ...] = ("frankfurt", "sydney")


@dataclass(frozen=True)
class ExperimentSettings:
    """Scale knobs shared by all experiment drivers.

    Attributes:
        runs: repetitions per configuration (paper: 5).
        request_count: reads per run (paper: 1,000).
        object_count: objects in the store (paper: 300).
        object_size: bytes per object (paper: 1 MB).
        cache_capacity_bytes: default cache size (paper: 10 MB).
        seed: base seed for workloads and latency jitter.
    """

    runs: int = 5
    request_count: int = 1000
    object_count: int = 300
    object_size: int = DEFAULT_OBJECT_SIZE
    cache_capacity_bytes: int = 10 * MEGABYTE
    seed: int = 42

    @classmethod
    def paper(cls) -> "ExperimentSettings":
        """The paper's full scale (§V-A)."""
        return cls()

    @classmethod
    def quick(cls) -> "ExperimentSettings":
        """A reduced scale for benchmarks and CI (same shapes, ~10× faster)."""
        return cls(runs=2, request_count=400, object_count=300)

    @classmethod
    def smoke(cls) -> "ExperimentSettings":
        """The minimal scale: one tiny run per configuration.

        Used by the CI docs job to assert the README quickstart commands
        actually execute; numbers at this scale are not meaningful.
        """
        return cls(runs=1, request_count=120, object_count=100)

    def workload(self, skew: float | None = 1.1) -> WorkloadSpec:
        """Build the experiment workload (Zipfian by default, uniform if ``skew`` is None)."""
        if skew is None:
            return uniform_workload(
                request_count=self.request_count,
                object_count=self.object_count,
                object_size=self.object_size,
                seed=self.seed,
            )
        return zipfian_workload(
            skew,
            request_count=self.request_count,
            object_count=self.object_count,
            object_size=self.object_size,
            seed=self.seed,
        )

    def with_requests(self, request_count: int) -> "ExperimentSettings":
        """Copy of the settings with a different request count."""
        return replace(self, request_count=request_count)


#: Size-suffix multipliers understood by :func:`parse_cache_size` (binary
#: units, matching :data:`MEGABYTE`).
_SIZE_SUFFIXES = {
    "B": 1,
    "KB": 1024,
    "MB": 1024 * 1024,
    "GB": 1024 * 1024 * 1024,
}


def parse_cache_size(text: str) -> int:
    """Parse a cache size like ``"256MB"``, ``"64kb"`` or ``"1048576"``.

    Bare numbers are bytes; suffixes are binary (``KB`` = 1024 B and so on).

    Raises:
        ValueError: for malformed or non-positive sizes.
    """
    cleaned = text.strip().upper()
    multiplier = 1
    for suffix, factor in sorted(_SIZE_SUFFIXES.items(), key=lambda kv: -len(kv[0])):
        if cleaned.endswith(suffix):
            cleaned = cleaned[: -len(suffix)].strip()
            multiplier = factor
            break
    try:
        value = float(cleaned)
    except ValueError:
        raise ValueError(f"malformed cache size {text!r}") from None
    if not math.isfinite(value):
        raise ValueError(f"cache size must be finite, got {text!r}")
    size = int(value * multiplier)
    if size <= 0:
        raise ValueError(f"cache size must be positive, got {text!r}")
    return size


@dataclass(frozen=True)
class RegionSpecOption:
    """One ``--region`` CLI value: a region with optional per-region overrides.

    Attributes:
        region: region name.
        strategy: read strategy pinned to this region (None = the
            experiment's/sweep's strategy).
        cache_capacity_bytes: this region's cache size (None = the
            deployment-wide default).
    """

    region: str
    strategy: str | None = None
    cache_capacity_bytes: int | None = None

    @classmethod
    def parse(cls, text: str) -> "RegionSpecOption":
        """Parse ``NAME[:STRATEGY[:CACHE]]``, e.g. ``frankfurt:agar:256MB``.

        Either override may be left empty (``sydney::64MB`` pins only the
        cache size).
        """
        parts = text.split(":")
        if not 1 <= len(parts) <= 3:
            raise ValueError(f"malformed region spec {text!r} "
                             "(expected NAME[:STRATEGY[:CACHE]])")
        region = parts[0].strip()
        if not region:
            raise ValueError(f"malformed region spec {text!r} (empty region name)")
        strategy = parts[1].strip() if len(parts) > 1 and parts[1].strip() else None
        if strategy is not None and not is_strategy_name(strategy):
            raise ValueError(f"unknown strategy {strategy!r} in region spec {text!r} "
                             "(expected backend, agar, lru-<c>, lfu-<c>, "
                             "lru-online-<c> or lfu-online-<c>)")
        capacity = (parse_cache_size(parts[2])
                    if len(parts) > 2 and parts[2].strip() else None)
        return cls(region=region, strategy=strategy, cache_capacity_bytes=capacity)


@dataclass(frozen=True)
class EngineOptions:
    """Discrete-event engine knobs shared by the experiment CLIs.

    The default (1 client, closed loop, no collaboration, figure-default
    regions) routes an experiment through the classic single-client driver;
    any other setting routes it through the multi-region event engine.

    Attributes:
        regions: client regions of the deployment (None = the figure's
            default regions).
        clients_per_region: concurrent clients per region.
        arrival_rate_rps: per-client open-loop Poisson arrival rate (None =
            closed loop).
        collaboration: §VI cache collaboration between the regions' Agar
            nodes (applies to the ``agar`` strategy only).
        region_specs: heterogeneous deployment description (``--region``
            flags): per-region strategy and/or cache-size overrides.
            Mutually exclusive with ``regions``.
    """

    regions: tuple[str, ...] | None = None
    clients_per_region: int = 1
    arrival_rate_rps: float | None = None
    collaboration: bool = False
    region_specs: tuple[RegionSpecOption, ...] | None = None

    def __post_init__(self) -> None:
        if self.clients_per_region <= 0:
            raise ValueError("clients_per_region must be positive")
        if self.arrival_rate_rps is not None and self.arrival_rate_rps <= 0:
            raise ValueError("arrival_rate_rps must be positive")
        if self.region_specs is not None:
            if self.regions is not None:
                raise ValueError("give either regions or region_specs, not both")
            if not self.region_specs:
                raise ValueError("region_specs must not be empty")
            names = [spec.region for spec in self.region_specs]
            if len(set(names)) != len(names):
                raise ValueError("region_specs regions must be distinct")

    @property
    def active(self) -> bool:
        """True if any knob deviates from the classic single-client loop."""
        return (self.regions is not None or self.clients_per_region > 1
                or self.arrival_rate_rps is not None or self.collaboration
                or self.region_specs is not None)

    def arrival_spec(self) -> ArrivalSpec:
        """The options' arrival process as an :class:`ArrivalSpec`."""
        if self.arrival_rate_rps is None:
            return ArrivalSpec()
        return poisson_arrivals(self.arrival_rate_rps)

    def effective_regions(self, default: tuple[str, ...]) -> tuple[str, ...]:
        """The deployment's region names, falling back to the figure's default."""
        if self.region_specs:
            return tuple(spec.region for spec in self.region_specs)
        return self.regions if self.regions else default

    def build_region_specs(self, default_regions: tuple[str, ...], strategy: str,
                           clients: int | None = None) -> tuple[RegionSpec, ...]:
        """Engine :class:`RegionSpec` tuple with per-region overrides applied.

        ``strategy`` is the experiment's (or sweep point's) strategy; regions
        pinned via ``region_specs`` keep their own strategy and cache size.
        Agar regions with a cache-size override also get Agar tunables
        adapted to that size (:func:`agar_config_for_capacity`), since the
        deployment-wide config was derived from the default capacity.
        """
        effective_clients = self.clients_per_region if clients is None else clients
        if self.region_specs:
            return tuple(
                engine_region_spec(spec, strategy, effective_clients)
                for spec in self.region_specs
            )
        return tuple(
            RegionSpec(region=region, clients=effective_clients, strategy=strategy)
            for region in self.effective_regions(default_regions)
        )


def engine_region_spec(option: RegionSpecOption, strategy: str,
                        clients: int) -> RegionSpec:
    """One engine :class:`RegionSpec` from a CLI region option.

    Applies the option's strategy/cache overrides; an Agar region with its
    own cache size also gets Agar tunables adapted to that size.
    """
    effective_strategy = option.strategy or strategy
    agar = None
    if option.cache_capacity_bytes is not None and effective_strategy == "agar":
        agar = agar_config_for_capacity(option.cache_capacity_bytes)
    return RegionSpec(
        region=option.region,
        clients=clients,
        strategy=effective_strategy,
        cache_capacity_bytes=option.cache_capacity_bytes,
        agar=agar,
    )


def agar_config_for_capacity(cache_capacity_bytes: int) -> AgarNodeConfig:
    """Agar tunables adapted to the cache size.

    For very large caches (≥ 50 MB, several hundred chunk slots) the dynamic
    program's early-stop window is tightened so reconfiguration time stays in
    the few-second range the paper reports (§VI); the resulting configurations
    are unchanged in practice because everything popular already fits.
    """
    if cache_capacity_bytes >= 50 * MEGABYTE:
        manager = CacheManagerConfig(stop_after_extra_keys=10, max_candidate_keys=200)
        return AgarNodeConfig(manager=manager)
    return AgarNodeConfig()
