"""Shared configuration for the paper-reproduction experiments.

Every experiment driver in this package regenerates one table or figure of the
paper.  They all consume an :class:`ExperimentSettings` instance so the same
code can run either at the paper's scale (300 objects, 1,000 reads, 5 runs) or
in a faster "quick" mode used by the benchmark suite and CI.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.agar_node import AgarNodeConfig
from repro.core.cache_manager import CacheManagerConfig
from repro.geo.latency import DEFAULT_OBJECT_SIZE
from repro.workload.workload import (
    ArrivalSpec,
    WorkloadSpec,
    poisson_arrivals,
    uniform_workload,
    zipfian_workload,
)

#: 1 MiB, the paper's object size.
MEGABYTE = 1024 * 1024

#: The strategy line-up of Fig. 6 / Fig. 7.
FIG6_STRATEGIES: tuple[str, ...] = (
    "agar",
    "lru-1", "lru-3", "lru-5", "lru-7", "lru-9",
    "lfu-1", "lfu-3", "lfu-5", "lfu-7", "lfu-9",
    "backend",
)

#: The reduced strategy line-up of Fig. 8 (the paper plots Agar, LRU/LFU-5/9).
FIG8_STRATEGIES: tuple[str, ...] = ("agar", "lru-5", "lru-9", "lfu-5", "lfu-9")

#: Cache sizes swept in Fig. 8a (MB).  The paper also shows the 0 MB backend bar.
FIG8A_CACHE_SIZES_MB: tuple[int, ...] = (5, 10, 20, 50, 100)

#: Zipfian skews swept in Fig. 8b (plus the uniform workload).
FIG8B_SKEWS: tuple[float, ...] = (0.2, 0.5, 0.8, 0.9, 1.0, 1.1, 1.4)

#: Skews plotted in Fig. 9.
FIG9_SKEWS: tuple[float, ...] = (0.5, 0.8, 1.1, 1.4)

#: Chunk counts swept in the Fig. 2 motivating experiment.
FIG2_CHUNK_COUNTS: tuple[int, ...] = (0, 1, 3, 5, 7, 9)

#: Client regions used throughout the evaluation.
EVALUATION_REGIONS: tuple[str, ...] = ("frankfurt", "sydney")


@dataclass(frozen=True)
class ExperimentSettings:
    """Scale knobs shared by all experiment drivers.

    Attributes:
        runs: repetitions per configuration (paper: 5).
        request_count: reads per run (paper: 1,000).
        object_count: objects in the store (paper: 300).
        object_size: bytes per object (paper: 1 MB).
        cache_capacity_bytes: default cache size (paper: 10 MB).
        seed: base seed for workloads and latency jitter.
    """

    runs: int = 5
    request_count: int = 1000
    object_count: int = 300
    object_size: int = DEFAULT_OBJECT_SIZE
    cache_capacity_bytes: int = 10 * MEGABYTE
    seed: int = 42

    @classmethod
    def paper(cls) -> "ExperimentSettings":
        """The paper's full scale (§V-A)."""
        return cls()

    @classmethod
    def quick(cls) -> "ExperimentSettings":
        """A reduced scale for benchmarks and CI (same shapes, ~10× faster)."""
        return cls(runs=2, request_count=400, object_count=300)

    def workload(self, skew: float | None = 1.1) -> WorkloadSpec:
        """Build the experiment workload (Zipfian by default, uniform if ``skew`` is None)."""
        if skew is None:
            return uniform_workload(
                request_count=self.request_count,
                object_count=self.object_count,
                object_size=self.object_size,
                seed=self.seed,
            )
        return zipfian_workload(
            skew,
            request_count=self.request_count,
            object_count=self.object_count,
            object_size=self.object_size,
            seed=self.seed,
        )

    def with_requests(self, request_count: int) -> "ExperimentSettings":
        """Copy of the settings with a different request count."""
        return replace(self, request_count=request_count)


@dataclass(frozen=True)
class EngineOptions:
    """Discrete-event engine knobs shared by the experiment CLIs.

    The default (1 client, closed loop, no collaboration, figure-default
    regions) routes an experiment through the classic single-client driver;
    any other setting routes it through the multi-region event engine.

    Attributes:
        regions: client regions of the deployment (None = the figure's
            default regions).
        clients_per_region: concurrent clients per region.
        arrival_rate_rps: per-client open-loop Poisson arrival rate (None =
            closed loop).
        collaboration: §VI cache collaboration between the regions' Agar
            nodes (applies to the ``agar`` strategy only).
    """

    regions: tuple[str, ...] | None = None
    clients_per_region: int = 1
    arrival_rate_rps: float | None = None
    collaboration: bool = False

    def __post_init__(self) -> None:
        if self.clients_per_region <= 0:
            raise ValueError("clients_per_region must be positive")
        if self.arrival_rate_rps is not None and self.arrival_rate_rps <= 0:
            raise ValueError("arrival_rate_rps must be positive")

    @property
    def active(self) -> bool:
        """True if any knob deviates from the classic single-client loop."""
        return (self.regions is not None or self.clients_per_region > 1
                or self.arrival_rate_rps is not None or self.collaboration)

    def arrival_spec(self) -> ArrivalSpec:
        """The options' arrival process as an :class:`ArrivalSpec`."""
        if self.arrival_rate_rps is None:
            return ArrivalSpec()
        return poisson_arrivals(self.arrival_rate_rps)

    def effective_regions(self, default: tuple[str, ...]) -> tuple[str, ...]:
        """The deployment's regions, falling back to the figure's default."""
        return self.regions if self.regions else default


def agar_config_for_capacity(cache_capacity_bytes: int) -> AgarNodeConfig:
    """Agar tunables adapted to the cache size.

    For very large caches (≥ 50 MB, several hundred chunk slots) the dynamic
    program's early-stop window is tightened so reconfiguration time stays in
    the few-second range the paper reports (§VI); the resulting configurations
    are unchanged in practice because everything popular already fits.
    """
    if cache_capacity_bytes >= 50 * MEGABYTE:
        manager = CacheManagerConfig(stop_after_extra_keys=10, max_candidate_keys=200)
        return AgarNodeConfig(manager=manager)
    return AgarNodeConfig()
