"""Experiment drivers: one module per table/figure of the paper's evaluation.

See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.experiments.common import (
    EVALUATION_REGIONS,
    FIG2_CHUNK_COUNTS,
    FIG6_STRATEGIES,
    FIG8A_CACHE_SIZES_MB,
    FIG8B_SKEWS,
    FIG8_STRATEGIES,
    FIG9_SKEWS,
    MEGABYTE,
    EngineOptions,
    ExperimentSettings,
    RegionSpecOption,
    agar_config_for_capacity,
    parse_cache_size,
)
from repro.experiments.multiregion import (
    EngineRunsResult,
    MultiRegionRow,
    RegionAggregate,
    render_multiregion,
    run_engine_comparison,
    run_engine_many,
    run_multiregion_scaling,
)
from repro.experiments.ablation import (
    run_agar_variants,
    run_solver_quality,
    synthetic_options,
)
from repro.experiments.fig2_motivating import Fig2Point, nonlinearity_check, render_fig2, run_fig2
from repro.experiments.fig6_policies import (
    PolicyComparisonRow,
    agar_advantage,
    render_fig6,
    render_fig7,
    run_policy_comparison,
)
from repro.experiments.fig8_sweeps import (
    SweepPoint,
    agar_lead_by_group,
    render_sweep,
    run_fig8a,
    run_fig8b,
)
from repro.experiments.fig9_popularity import Fig9Series, render_fig9, run_fig9
from repro.experiments.fig_collab import (
    CollabPointRow,
    CollabSweepResult,
    CrossoverRow,
    OverlapRow,
    compute_crossover,
    render_fig_collab,
    run_fig_collab,
)
from repro.experiments.fig10_cache_contents import (
    FIG10_SCENARIOS,
    Fig10Snapshot,
    diversity_check,
    render_fig10,
    run_fig10,
)
from repro.experiments.microbench import MicrobenchResult, run_capacity_scaling, run_microbench
from repro.experiments.table1_latency import (
    Table1Row,
    render_table1,
    run_table1,
    run_table1_calibrated,
)

__all__ = [
    "EVALUATION_REGIONS",
    "ExperimentSettings",
    "FIG10_SCENARIOS",
    "FIG2_CHUNK_COUNTS",
    "FIG6_STRATEGIES",
    "FIG8A_CACHE_SIZES_MB",
    "FIG8B_SKEWS",
    "FIG8_STRATEGIES",
    "FIG9_SKEWS",
    "CollabPointRow",
    "CollabSweepResult",
    "CrossoverRow",
    "EngineOptions",
    "EngineRunsResult",
    "Fig10Snapshot",
    "Fig2Point",
    "Fig9Series",
    "MEGABYTE",
    "MicrobenchResult",
    "MultiRegionRow",
    "OverlapRow",
    "PolicyComparisonRow",
    "RegionAggregate",
    "RegionSpecOption",
    "SweepPoint",
    "Table1Row",
    "agar_advantage",
    "agar_config_for_capacity",
    "agar_lead_by_group",
    "compute_crossover",
    "diversity_check",
    "nonlinearity_check",
    "render_fig10",
    "render_fig2",
    "render_fig6",
    "render_fig_collab",
    "render_fig7",
    "render_fig9",
    "render_multiregion",
    "render_sweep",
    "render_table1",
    "run_agar_variants",
    "run_capacity_scaling",
    "run_engine_comparison",
    "run_engine_many",
    "run_fig10",
    "run_fig2",
    "run_fig8a",
    "run_fig_collab",
    "run_fig8b",
    "run_fig9",
    "run_microbench",
    "run_multiregion_scaling",
    "parse_cache_size",
    "run_policy_comparison",
    "run_solver_quality",
    "run_table1",
    "run_table1_calibrated",
    "synthetic_options",
]
