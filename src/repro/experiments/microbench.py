"""§VI micro-measurements: request-monitor overhead and cache-manager run time.

The paper reports that processing a client request in the Request Monitor plus
Cache Manager takes ≈ 0.5 ms on average, that one run of the configuration
algorithm takes ≈ 5 ms, and that its cost grows with the square of the cache
size rather than with the dataset size (thanks to the early-stop optimisation).
This module measures the same quantities on the Python implementation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.backend.object_store import ErasureCodedStore
from repro.core.agar_node import AgarNode, AgarNodeConfig
from repro.core.cache_manager import CacheManagerConfig
from repro.experiments.common import MEGABYTE, ExperimentSettings
from repro.geo.topology import default_topology
from repro.workload.workload import generate_requests


@dataclass(frozen=True)
class MicrobenchResult:
    """Timing results mirroring the §VI numbers."""

    request_processing_ms: float
    reconfiguration_ms: float
    cache_capacity_mb: float
    candidate_keys: int


def run_microbench(settings: ExperimentSettings | None = None,
                   cache_capacity_bytes: int = 10 * MEGABYTE,
                   client_region: str = "frankfurt",
                   use_early_stop: bool = True) -> MicrobenchResult:
    """Measure per-request processing and reconfiguration time of one Agar node."""
    settings = settings or ExperimentSettings.quick()
    topology = default_topology(seed=settings.seed)
    store = ErasureCodedStore(topology)
    store.populate(settings.object_count, settings.object_size)

    manager_config = CacheManagerConfig(
        stop_after_extra_keys=25 if use_early_stop else None,
    )
    node = AgarNode(
        client_region, store, cache_capacity_bytes,
        config=AgarNodeConfig(manager=manager_config),
    )

    workload = settings.workload(skew=1.1)
    requests = generate_requests(workload, seed=settings.seed)

    start = time.perf_counter()
    for request in requests:
        node.request_monitor.record_request(request.key)
    request_processing_ms = (time.perf_counter() - start) * 1000.0 / max(len(requests), 1)

    popularity = node.request_monitor.end_period()
    start = time.perf_counter()
    node.cache_manager.reconfigure(popularity)
    reconfiguration_ms = (time.perf_counter() - start) * 1000.0

    return MicrobenchResult(
        request_processing_ms=request_processing_ms,
        reconfiguration_ms=reconfiguration_ms,
        cache_capacity_mb=cache_capacity_bytes / MEGABYTE,
        candidate_keys=len(popularity),
    )


def run_capacity_scaling(settings: ExperimentSettings | None = None,
                         cache_sizes_mb: tuple[int, ...] = (5, 10, 20, 50)) -> list[MicrobenchResult]:
    """Reconfiguration time as a function of cache size (the O(C²) claim)."""
    settings = settings or ExperimentSettings.quick()
    return [
        run_microbench(settings, cache_capacity_bytes=size_mb * MEGABYTE)
        for size_mb in cache_sizes_mb
    ]
