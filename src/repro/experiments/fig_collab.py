"""The §VI collaboration sweep: when do collaborating caches beat independent ones?

The paper's §VI sketches collaborating caches — nearby Agar nodes broadcast
their contents so each node discounts the value of chunks a neighbour already
pins — and argues it pays off when reading from a neighbour's cache is cheap.
This experiment maps *when*: it sweeps the assumed neighbour-read latency
(``neighbor_read_ms``), the region pairing (nearby vs far apart) and the
collaboration period, and for every point compares a collaborative deployment
against the identical deployment with independent caches:

* per-region (and deployment-wide) mean latency and hit ratio, collaborative
  vs independent, with the collaboration advantage in percent;
* the **crossover point** per pairing/period: the ``neighbor_read_ms`` beyond
  which collaboration stops winning (linearly interpolated between sweep
  points);
* the **cache-content overlap** between the paired regions
  (:meth:`~repro.extensions.collaboration.CollaborationCoordinator.overlap_report`):
  how many identical chunks both caches pin, collaborative vs independent —
  the mechanism §VI exploits is precisely the reduction of this number.

Runs execute on the multi-region discrete-event engine; ``sharded=True``
routes them through :meth:`~repro.sim.engine.EventEngine.run_sharded`'s
process-parallel collaborative path (the message-passing §VI round protocol)
instead of the in-process scheduler.  See ``docs/collaboration.md`` for how
to read the output.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import Table, percent_difference
from repro.experiments.common import (
    EngineOptions,
    ExperimentSettings,
    agar_config_for_capacity,
)
from repro.extensions.collaboration import announcement_of, overlap_between
from repro.sim.engine import (
    EngineConfig,
    EngineResult,
    EventEngine,
    RegionSpec,
)

#: Neighbour-read latencies swept by default (ms).  The span deliberately
#: brackets the coordinator's 120 ms default: well below it a neighbour cache
#: is almost as good as the local one, far above it the discount barely
#: matters.
DEFAULT_NEIGHBOR_READ_MS: tuple[float, ...] = (10.0, 50.0, 120.0, 250.0, 500.0)

#: Region pairings swept by default: a nearby (same-continent) pair and a
#: far pair, the contrast §VI's argument rests on.
DEFAULT_PAIRINGS: tuple[tuple[str, ...], ...] = (
    ("frankfurt", "dublin"),
    ("frankfurt", "sydney"),
)

#: Collaboration periods swept by default (s); 30 s is the paper's
#: reconfiguration period.
DEFAULT_PERIODS: tuple[float, ...] = (30.0,)

#: Region label of deployment-wide rows.
DEPLOYMENT_LABEL = "all"


@dataclass(frozen=True)
class CollabPointRow:
    """One region's collaborative-vs-independent comparison at one sweep point."""

    pairing: str
    period_s: float
    neighbor_read_ms: float
    region: str
    collab_mean_ms: float
    independent_mean_ms: float
    collab_hit_ratio: float
    independent_hit_ratio: float
    #: Chunks the collaborative deployment read from neighbouring caches at
    #: this point, averaged per run (the independent baseline has no
    #: neighbour catalogs, so its count is structurally zero).
    collab_neighbor_chunks: float = 0.0

    @property
    def advantage_pct(self) -> float:
        """How much lower the collaborative latency is (positive = collab wins)."""
        return percent_difference(self.independent_mean_ms, self.collab_mean_ms)


@dataclass(frozen=True)
class OverlapRow:
    """Cache-content overlap of one region pair at one sweep point."""

    pairing: str
    pair: str
    period_s: float
    neighbor_read_ms: float
    collab_overlap_chunks: int
    independent_overlap_chunks: int


@dataclass(frozen=True)
class CrossoverRow:
    """Where collaboration stops winning along the neighbor_read_ms axis."""

    pairing: str
    period_s: float
    #: Interpolated neighbor_read_ms at which the advantage hits zero; None
    #: if collaboration wins (or loses) across the whole sweep.
    crossover_ms: float | None
    always_wins: bool
    never_wins: bool
    #: True when collaboration wins on the cheap side of the crossover (the
    #: physically expected direction); False for the inverted case.
    wins_below: bool = True
    #: False when the advantage changes sign more than once across the sweep
    #: (the reported crossover is then only the first crossing).
    monotonic: bool = True

    def describe(self) -> str:
        """One summary line for the report."""
        prefix = f"{self.pairing} (period {self.period_s:g} s): "
        if self.always_wins:
            return prefix + "collaboration wins across the whole sweep"
        if self.never_wins:
            return prefix + "independent caches win across the whole sweep"
        side = "below" if self.wins_below else "above"
        line = (prefix + f"collaboration wins {side} ~{self.crossover_ms:.0f} ms "
                "neighbour reads")
        if not self.monotonic:
            line += " (advantage is not monotonic across the sweep)"
        return line


@dataclass(frozen=True)
class CollabSweepResult:
    """Everything one `fig_collab` invocation produced."""

    rows: list[CollabPointRow]
    overlaps: list[OverlapRow]
    crossovers: list[CrossoverRow]
    sharded: bool


@dataclass
class _RunAggregate:
    """Per-region means over the repeated runs of one deployment."""

    mean_ms: dict[str, float]
    hit_ratio: dict[str, float]
    neighbor_chunks: dict[str, float]
    overlap: dict[tuple[str, str], int]


def _snapshot_overlap(result: EngineResult) -> dict[tuple[str, str], int]:
    """Pairwise cache-content overlap from the run's final cache snapshots."""
    contents: dict[str, set[tuple[str, int]]] = {}
    for region, region_result in result.regions.items():
        snapshot = region_result.cache_snapshot
        chunks: set[tuple[str, int]] = set()
        if snapshot is not None:
            for key, indices in snapshot.chunks_per_key.items():
                chunks.update((key, index) for index in indices)
        contents[region] = chunks
    regions = list(result.regions)
    return {
        (first, second): len(contents[first] & contents[second])
        for position, first in enumerate(regions)
        for second in regions[position + 1:]
    }


def _deployment_overlap(deployment, result: EngineResult, sharded: bool
                        ) -> dict[tuple[str, str], int]:
    """Pinned-configuration overlap of a finished deployment.

    Collaborative deployments report through the coordinator
    (``overlap_report`` live, or the announcements a sharded run's workers
    last published).  Independent in-process deployments read the nodes'
    configurations directly; independent *sharded* runs leave the parent
    nodes cold, so there the final cache snapshots stand in (for Agar
    strategies the cache admits only pinned chunks, so the two views agree
    up to not-yet-populated chunks).
    """
    coordinator = deployment.coordinator
    if coordinator is not None:
        return coordinator.latest_overlap() if sharded else coordinator.overlap_report()
    if not sharded:
        announcements = [
            announcement_of(strategy.node) for strategy in deployment.strategies
        ]
        return overlap_between(announcements)
    return _snapshot_overlap(result)


def _run_point(settings: ExperimentSettings, regions: tuple[str, ...],
               clients_per_region: int, arrival, collaboration: bool,
               period_s: float, neighbor_read_ms: float,
               sharded: bool) -> _RunAggregate:
    """Run one deployment (collaborative or independent) and aggregate it."""
    capacity = settings.cache_capacity_bytes
    config = EngineConfig(
        workload=settings.workload(skew=1.1),
        regions=tuple(
            RegionSpec(region=region, clients=clients_per_region, strategy="agar")
            for region in regions
        ),
        cache_capacity_bytes=capacity,
        agar=agar_config_for_capacity(capacity),
        topology_seed=settings.seed,
        arrival=arrival,
        collaboration=collaboration,
        collaboration_period_s=period_s if collaboration else None,
        neighbor_read_ms=neighbor_read_ms,
        timer_reconfiguration=True,
    )
    engine = EventEngine(config)
    base_seed = config.workload.seed
    engine.topology.latency.reseed(config.topology_seed + base_seed)
    deployment = engine.build_deployment()

    mean_sums: dict[str, float] = {region: 0.0 for region in regions}
    hit_sums: dict[str, float] = {region: 0.0 for region in regions}
    neighbor_sums: dict[str, float] = {region: 0.0 for region in regions}
    aggregate_mean = 0.0
    aggregate_hit = 0.0
    aggregate_neighbor = 0.0
    result: EngineResult | None = None
    for run_index in range(settings.runs):
        seed = base_seed + run_index
        if sharded:
            result = engine.execute_sharded(deployment, seed)
        else:
            result = engine.execute(deployment, seed)
        for region, region_result in result.regions.items():
            mean_sums[region] += region_result.mean_latency_ms
            hit_sums[region] += region_result.hit_ratio
            neighbor_sums[region] += region_result.stats.neighbor_chunks_total
        merged = result.aggregate()
        aggregate_mean += merged.mean_latency_ms
        aggregate_hit += merged.hit_ratio
        aggregate_neighbor += merged.neighbor_chunks

    runs = settings.runs
    mean_ms = {region: total / runs for region, total in mean_sums.items()}
    hit_ratio = {region: total / runs for region, total in hit_sums.items()}
    neighbor_chunks = {region: total / runs for region, total in neighbor_sums.items()}
    mean_ms[DEPLOYMENT_LABEL] = aggregate_mean / runs
    hit_ratio[DEPLOYMENT_LABEL] = aggregate_hit / runs
    neighbor_chunks[DEPLOYMENT_LABEL] = aggregate_neighbor / runs
    return _RunAggregate(
        mean_ms=mean_ms,
        hit_ratio=hit_ratio,
        neighbor_chunks=neighbor_chunks,
        overlap=_deployment_overlap(deployment, result, sharded),
    )


def compute_crossover(pairing: str, period_s: float,
                      points: list[tuple[float, float]]) -> CrossoverRow:
    """Locate the collaboration-vs-independent crossover along the sweep.

    ``points`` are ``(neighbor_read_ms, advantage_pct)`` pairs in ascending
    ``neighbor_read_ms`` order; a positive advantage means collaboration has
    the lower latency.  The crossover is the first sign change, linearly
    interpolated between the bracketing sweep points.
    """
    if not points:
        raise ValueError("at least one sweep point is required")
    wins = [advantage > 0.0 for _, advantage in points]
    if all(wins):
        return CrossoverRow(pairing, period_s, None, always_wins=True, never_wins=False)
    if not any(wins):
        return CrossoverRow(pairing, period_s, None, always_wins=False, never_wins=True)
    crossover_ms = points[0][0]
    wins_below = wins[0]
    sign_changes = 0
    for (left_ms, left_adv), (right_ms, right_adv) in zip(points, points[1:]):
        if (left_adv > 0.0) == (right_adv > 0.0):
            continue
        sign_changes += 1
        if sign_changes == 1:
            span = left_adv - right_adv
            fraction = left_adv / span if span != 0.0 else 0.5
            crossover_ms = left_ms + (right_ms - left_ms) * fraction
    return CrossoverRow(pairing, period_s, crossover_ms,
                        always_wins=False, never_wins=False,
                        wins_below=wins_below, monotonic=sign_changes <= 1)


def run_fig_collab(settings: ExperimentSettings | None = None,
                   options: EngineOptions | None = None,
                   neighbor_read_ms_values: tuple[float, ...] | None = None,
                   pairings: tuple[tuple[str, ...], ...] | None = None,
                   periods: tuple[float, ...] | None = None,
                   sharded: bool = False) -> CollabSweepResult:
    """Run the §VI collaboration sweep.

    For every (pairing, period) the independent baseline runs once — its
    results do not depend on ``neighbor_read_ms`` — and the collaborative
    deployment runs once per swept ``neighbor_read_ms``.  ``options``
    contributes client count, arrival process and (via ``--regions``) an
    override pairing.
    """
    settings = settings or ExperimentSettings.quick()
    options = options or EngineOptions()
    clients = options.clients_per_region
    arrival = options.arrival_spec()
    if pairings is None:
        pairings = ((options.regions,) if options.regions
                    else DEFAULT_PAIRINGS)
    sweep = (DEFAULT_NEIGHBOR_READ_MS if neighbor_read_ms_values is None
             else tuple(neighbor_read_ms_values))
    if not sweep:
        raise ValueError("neighbor_read_ms_values must not be empty")
    sweep = tuple(sorted(sweep))
    periods = DEFAULT_PERIODS if periods is None else tuple(periods)
    if not periods:
        raise ValueError("periods must not be empty")

    rows: list[CollabPointRow] = []
    overlaps: list[OverlapRow] = []
    crossovers: list[CrossoverRow] = []
    for pairing in pairings:
        if len(pairing) < 2:
            raise ValueError(f"a pairing needs at least two regions, got {pairing!r}")
        label = "+".join(pairing)
        # The independent baseline depends on neither neighbor_read_ms nor
        # the collaboration period: one run per pairing serves every point.
        independent = _run_point(
            settings, pairing, clients, arrival, collaboration=False,
            period_s=sweep[0], neighbor_read_ms=sweep[0], sharded=sharded,
        )
        for period_s in periods:
            aggregate_points: list[tuple[float, float]] = []
            for neighbor_read_ms in sweep:
                collab = _run_point(
                    settings, pairing, clients, arrival, collaboration=True,
                    period_s=period_s, neighbor_read_ms=neighbor_read_ms,
                    sharded=sharded,
                )
                for region in (*pairing, DEPLOYMENT_LABEL):
                    rows.append(CollabPointRow(
                        pairing=label,
                        period_s=period_s,
                        neighbor_read_ms=neighbor_read_ms,
                        region=region,
                        collab_mean_ms=collab.mean_ms[region],
                        independent_mean_ms=independent.mean_ms[region],
                        collab_hit_ratio=collab.hit_ratio[region],
                        independent_hit_ratio=independent.hit_ratio[region],
                        collab_neighbor_chunks=collab.neighbor_chunks[region],
                    ))
                for position, first in enumerate(pairing):
                    for second in pairing[position + 1:]:
                        pair_key = (first, second)
                        overlaps.append(OverlapRow(
                            pairing=label,
                            pair=f"{first}+{second}",
                            period_s=period_s,
                            neighbor_read_ms=neighbor_read_ms,
                            collab_overlap_chunks=collab.overlap.get(pair_key, 0),
                            independent_overlap_chunks=independent.overlap.get(pair_key, 0),
                        ))
                aggregate_points.append((
                    neighbor_read_ms,
                    percent_difference(independent.mean_ms[DEPLOYMENT_LABEL],
                                       collab.mean_ms[DEPLOYMENT_LABEL]),
                ))
            crossovers.append(compute_crossover(label, period_s, aggregate_points))
    return CollabSweepResult(rows=rows, overlaps=overlaps, crossovers=crossovers,
                             sharded=sharded)


def render_fig_collab(result: CollabSweepResult) -> str:
    """Render the sweep as the figure-style report (tables + crossover lines)."""
    mode = "sharded engine" if result.sharded else "in-process engine"
    sweep_table = Table(
        title=f"Collaboration sweep — collaborative vs independent caches ({mode})",
        columns=("pairing", "period (s)", "neighbor read (ms)", "region",
                 "collab mean (ms)", "indep mean (ms)", "advantage (%)",
                 "collab hit (%)", "indep hit (%)", "collab nbr chunks"),
    )
    for row in result.rows:
        sweep_table.add_row(
            row.pairing,
            row.period_s,
            row.neighbor_read_ms,
            row.region,
            row.collab_mean_ms,
            row.independent_mean_ms,
            row.advantage_pct,
            row.collab_hit_ratio * 100.0,
            row.independent_hit_ratio * 100.0,
            row.collab_neighbor_chunks,
        )

    overlap_table = Table(
        title="Cache-content overlap between the paired regions (identical pinned chunks)",
        columns=("pairing", "pair", "period (s)", "neighbor read (ms)",
                 "collab overlap", "indep overlap"),
    )
    for overlap in result.overlaps:
        overlap_table.add_row(
            overlap.pairing,
            overlap.pair,
            overlap.period_s,
            overlap.neighbor_read_ms,
            overlap.collab_overlap_chunks,
            overlap.independent_overlap_chunks,
        )

    lines = [sweep_table.render(), ""]
    lines.append("Crossover (collaboration vs independent, deployment-wide mean):")
    for crossover in result.crossovers:
        lines.append(f"  {crossover.describe()}")
    lines.append("")
    lines.append(overlap_table.render())
    return "\n".join(lines)
