"""Wire-level serving experiment: measured latency over real sockets.

Deploys per-region gateways (:mod:`repro.serve`) from the same engine
configuration the simulated experiments use, drives them with the wire load
generator, and reports measured wall-clock p50/p95/p99 and req/s in the
same table format as the simulated runs — the serving twin of the Fig. 6
latency experiment, with real request framing, scheduling and payload
reconstruction on the measured path.

Objects are capped at 64 KiB on the wire (the paper's 1 MB objects are
about backend placement, not loopback bandwidth), so the measurement tracks
gateway overhead rather than local socket throughput.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.analysis.report import Table
from repro.experiments.common import ExperimentSettings
from repro.serve.gateway import ServeCluster
from repro.serve.loadgen import (RegionWireResult, WireLoadSpec,
                                 run_wire_load, wire_report_table)
from repro.sim.engine import EngineConfig, RegionSpec
from repro.workload.workload import ArrivalSpec, WorkloadSpec

MEGABYTE = 1024 * 1024
WIRE_OBJECT_SIZE_CAP = 64 * 1024


@dataclass(frozen=True, slots=True)
class ServeWireOptions:
    """Deployment shape of the wire experiment."""

    regions: tuple[str, ...] = ("frankfurt",)
    strategy: str = "agar"
    connections: int = 4
    pipeline_depth: int = 32
    rate_rps: float | None = None  # None = closed loop


def run_serve_wire(settings: ExperimentSettings,
                   options: ServeWireOptions | None = None,
                   ) -> dict[str, RegionWireResult]:
    """Serve one wire run and return the per-region measured results."""
    options = options or ServeWireOptions()
    workload = WorkloadSpec(
        object_count=settings.object_count,
        object_size=min(settings.object_size, WIRE_OBJECT_SIZE_CAP),
        request_count=settings.request_count,
        seed=settings.seed,
    )
    config = EngineConfig(
        workload=workload,
        regions=[RegionSpec(region=name, clients=1, strategy=options.strategy)
                 for name in options.regions],
        cache_capacity_bytes=settings.cache_capacity_bytes,
        topology_seed=settings.seed,
    )
    arrival = (ArrivalSpec(process="poisson", rate_rps=options.rate_rps)
               if options.rate_rps else ArrivalSpec())
    spec = WireLoadSpec(workload=workload, arrival=arrival,
                        connections=options.connections,
                        pipeline_depth=options.pipeline_depth)

    async def serve_and_load() -> dict[str, RegionWireResult]:
        cluster = ServeCluster.from_config(config, seed=settings.seed,
                                           payloads=True)
        async with cluster:
            return await run_wire_load(cluster.addresses, spec,
                                       seed=settings.seed)

    return asyncio.run(serve_and_load())


def render_serve_wire(results: dict[str, RegionWireResult]) -> Table:
    """The measured wire table (same columns for every serving report)."""
    return wire_report_table(
        results, title="Wire-level serving latency (measured over sockets)")
