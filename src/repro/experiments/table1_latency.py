"""Table I — per-region read latency estimates seen from Frankfurt.

The paper's Table I lists the per-chunk read latency the Region Manager
measures from Frankfurt to each of the six regions.  This experiment runs the
Region Manager's warm-up probes against the ``table1`` topology preset (whose
Frankfurt row uses the paper's values verbatim) and, for reference, against the
calibrated evaluation topology.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import Table
from repro.backend.object_store import ErasureCodedStore
from repro.core.region_manager import RegionManager
from repro.geo.topology import TABLE1_FRANKFURT_LATENCIES, Topology, default_topology, table1_topology


@dataclass(frozen=True)
class Table1Row:
    """One region's latency estimate."""

    region: str
    paper_ms: float | None
    measured_ms: float


def run_table1(client_region: str = "frankfurt", topology: Topology | None = None,
               object_count: int = 10, object_size: int = 1024 * 1024) -> list[Table1Row]:
    """Measure per-region chunk-read latency estimates via the Region Manager.

    Args:
        client_region: region to probe from (the paper reports Frankfurt).
        topology: topology to probe; defaults to the ``table1`` preset.
        object_count / object_size: small working set placed before probing so
            the Region Manager has a catalog to describe.
    """
    topology = topology or table1_topology()
    store = ErasureCodedStore(topology)
    store.populate(object_count, object_size)
    manager = RegionManager(client_region, store)
    estimates = manager.latency_estimates()

    rows = []
    for region in topology.region_names:
        paper = TABLE1_FRANKFURT_LATENCIES.get(region) if client_region == "frankfurt" else None
        rows.append(Table1Row(region=region, paper_ms=paper, measured_ms=estimates[region]))
    rows.sort(key=lambda row: row.measured_ms)
    return rows


def run_table1_calibrated(client_region: str = "frankfurt") -> list[Table1Row]:
    """Same measurement on the calibrated evaluation topology (for EXPERIMENTS.md)."""
    return run_table1(client_region=client_region, topology=default_topology())


def render_table1(rows: list[Table1Row], title: str = "Table I — read latency from Frankfurt") -> Table:
    """Render the rows as an aligned text table."""
    table = Table(title=title, columns=("region", "paper (ms)", "measured (ms)"))
    for row in rows:
        paper = f"{row.paper_ms:.0f}" if row.paper_ms is not None else "-"
        table.add_row(row.region, paper, row.measured_ms)
    return table
