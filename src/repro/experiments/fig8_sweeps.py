"""Figure 8 — influence of cache size (8a) and workload skew (8b).

Fig. 8a keeps the Zipf-1.1 workload fixed and sweeps the cache size over
{5, 10, 20, 50, 100} MB (plus the 0 MB backend bar); Fig. 8b keeps the cache at
10 MB and sweeps the workload over {uniform, Zipf 0.2 … 1.4}.  Both run from
Frankfurt and compare Agar with LRU-5/9 and LFU-5/9.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import Table, improvement_summary
from repro.experiments.common import (
    FIG8A_CACHE_SIZES_MB,
    FIG8B_SKEWS,
    FIG8_STRATEGIES,
    MEGABYTE,
    ExperimentSettings,
    agar_config_for_capacity,
)
from repro.sim.simulation import run_comparison
from repro.workload.workload import WorkloadSpec


@dataclass(frozen=True)
class SweepPoint:
    """One bar of Fig. 8a or Fig. 8b."""

    group: str          #: "5MB" / "100MB" for 8a, "uniform" / "zipf-1.1" for 8b
    strategy: str
    mean_latency_ms: float
    hit_ratio: float


def run_fig8a(settings: ExperimentSettings | None = None,
              cache_sizes_mb: tuple[int, ...] = FIG8A_CACHE_SIZES_MB,
              strategies: tuple[str, ...] = FIG8_STRATEGIES,
              client_region: str = "frankfurt",
              include_backend_bar: bool = True) -> list[SweepPoint]:
    """Vary the cache size with the workload fixed at Zipf 1.1 (Fig. 8a)."""
    settings = settings or ExperimentSettings.quick()
    workload = settings.workload(skew=1.1)
    points: list[SweepPoint] = []

    if include_backend_bar:
        comparison = run_comparison(
            workload=workload, strategies=["backend"], client_region=client_region,
            cache_capacity_bytes=0, runs=settings.runs, topology_seed=settings.seed,
        )
        points.append(
            SweepPoint(group="0MB", strategy="backend",
                       mean_latency_ms=comparison["backend"].mean_latency_ms,
                       hit_ratio=comparison["backend"].hit_ratio)
        )

    for size_mb in cache_sizes_mb:
        capacity = size_mb * MEGABYTE
        comparison = run_comparison(
            workload=workload,
            strategies=list(strategies),
            client_region=client_region,
            cache_capacity_bytes=capacity,
            runs=settings.runs,
            agar_config=agar_config_for_capacity(capacity),
            topology_seed=settings.seed,
        )
        for strategy, aggregate in comparison.items():
            points.append(
                SweepPoint(group=f"{size_mb}MB", strategy=strategy,
                           mean_latency_ms=aggregate.mean_latency_ms,
                           hit_ratio=aggregate.hit_ratio)
            )
    return points


def run_fig8b(settings: ExperimentSettings | None = None,
              skews: tuple[float, ...] = FIG8B_SKEWS,
              strategies: tuple[str, ...] = FIG8_STRATEGIES,
              client_region: str = "frankfurt",
              include_uniform: bool = True,
              include_backend_bar: bool = True) -> list[SweepPoint]:
    """Vary the workload with the cache fixed at 10 MB (Fig. 8b)."""
    settings = settings or ExperimentSettings.quick()
    capacity = settings.cache_capacity_bytes
    points: list[SweepPoint] = []

    workloads: list[tuple[str, WorkloadSpec]] = []
    if include_uniform:
        workloads.append(("uniform", settings.workload(skew=None)))
    workloads.extend((f"zipf-{skew:g}", settings.workload(skew=skew)) for skew in skews)

    if include_backend_bar:
        comparison = run_comparison(
            workload=workloads[0][1], strategies=["backend"], client_region=client_region,
            cache_capacity_bytes=0, runs=settings.runs, topology_seed=settings.seed,
        )
        points.append(
            SweepPoint(group="backend", strategy="backend",
                       mean_latency_ms=comparison["backend"].mean_latency_ms,
                       hit_ratio=comparison["backend"].hit_ratio)
        )

    for group, workload in workloads:
        comparison = run_comparison(
            workload=workload,
            strategies=list(strategies),
            client_region=client_region,
            cache_capacity_bytes=capacity,
            runs=settings.runs,
            agar_config=agar_config_for_capacity(capacity),
            topology_seed=settings.seed,
        )
        for strategy, aggregate in comparison.items():
            points.append(
                SweepPoint(group=group, strategy=strategy,
                           mean_latency_ms=aggregate.mean_latency_ms,
                           hit_ratio=aggregate.hit_ratio)
            )
    return points


def render_sweep(points: list[SweepPoint], title: str) -> Table:
    """Render a sweep as a table with one row per group, one column per strategy."""
    groups = list(dict.fromkeys(point.group for point in points))
    strategies = list(dict.fromkeys(point.strategy for point in points))
    lookup = {(point.group, point.strategy): point.mean_latency_ms for point in points}
    table = Table(title=title, columns=("group", *strategies))
    for group in groups:
        table.add_row(group, *[lookup.get((group, strategy), float("nan")) for strategy in strategies])
    return table


def agar_lead_by_group(points: list[SweepPoint]) -> dict[str, float]:
    """Agar's latency advantage (%) over the best static policy, per sweep group."""
    leads: dict[str, float] = {}
    groups = {point.group for point in points if point.strategy == "agar"}
    for group in groups:
        latencies = {
            point.strategy: point.mean_latency_ms
            for point in points
            if point.group == group
        }
        summary = improvement_summary(latencies, subject="agar", exclude=("backend",))
        leads[group] = summary["vs_best_pct"]
    return leads
