"""Figure 8 — influence of cache size (8a) and workload skew (8b).

Fig. 8a keeps the Zipf-1.1 workload fixed and sweeps the cache size over
{5, 10, 20, 50, 100} MB (plus the 0 MB backend bar); Fig. 8b keeps the cache at
10 MB and sweeps the workload over {uniform, Zipf 0.2 … 1.4}.  Both run from
Frankfurt and compare Agar with LRU-5/9 and LFU-5/9.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import Table, improvement_summary
from repro.core.agar_node import AgarNodeConfig
from repro.experiments.common import (
    FIG8A_CACHE_SIZES_MB,
    FIG8B_SKEWS,
    FIG8_STRATEGIES,
    MEGABYTE,
    EngineOptions,
    ExperimentSettings,
    agar_config_for_capacity,
)
from repro.experiments.multiregion import run_engine_comparison
from repro.sim.simulation import run_comparison
from repro.workload.workload import WorkloadSpec


def _compare_strategies(workload: WorkloadSpec, strategies: list[str],
                        client_region: str, cache_capacity_bytes: int,
                        settings: ExperimentSettings,
                        agar_config: AgarNodeConfig | None = None,
                        engine: EngineOptions | None = None
                        ) -> dict[str, tuple[float, float]]:
    """One sweep point: ``{strategy: (mean_latency_ms, hit_ratio)}``.

    Dispatches to the classic single-client driver, or — with active engine
    options — to the discrete-event engine (metrics averaged over the
    deployment's regions, which all carry the same request count).

    Raises:
        ValueError: if engine options pin per-region strategies — Fig. 8
            compares strategies, so a pinned region would report the same
            deployment under every strategy label (use ``fig6`` or
            ``multiregion`` for heterogeneous-strategy deployments; per-region
            cache sizes remain valid here).
    """
    if engine is not None and engine.active:
        pinned = [spec.region for spec in engine.region_specs or ()
                  if spec.strategy is not None]
        if pinned:
            raise ValueError(
                f"fig8 sweeps strategies; pinned per-region strategies "
                f"(--region, offending: {pinned}) belong to fig6/multiregion"
            )
        regions = engine.effective_regions((client_region,))
        comparison = run_engine_comparison(
            workload=workload,
            strategies=strategies,
            regions=regions,
            cache_capacity_bytes=cache_capacity_bytes,
            runs=settings.runs,
            clients_per_region=engine.clients_per_region,
            arrival=engine.arrival_spec(),
            collaboration=engine.collaboration,
            agar_config=agar_config,
            topology_seed=settings.seed,
            region_specs=engine.region_specs,
        )
        return {
            strategy: (
                sum(a.mean_latency_ms for a in per_region.values()) / len(per_region),
                sum(a.hit_ratio for a in per_region.values()) / len(per_region),
            )
            for strategy, per_region in comparison.items()
        }

    comparison = run_comparison(
        workload=workload,
        strategies=strategies,
        client_region=client_region,
        cache_capacity_bytes=cache_capacity_bytes,
        runs=settings.runs,
        agar_config=agar_config,
        topology_seed=settings.seed,
    )
    return {
        strategy: (aggregate.mean_latency_ms, aggregate.hit_ratio)
        for strategy, aggregate in comparison.items()
    }


@dataclass(frozen=True)
class SweepPoint:
    """One bar of Fig. 8a or Fig. 8b."""

    group: str          #: "5MB" / "100MB" for 8a, "uniform" / "zipf-1.1" for 8b
    strategy: str
    mean_latency_ms: float
    hit_ratio: float


def run_fig8a(settings: ExperimentSettings | None = None,
              cache_sizes_mb: tuple[int, ...] = FIG8A_CACHE_SIZES_MB,
              strategies: tuple[str, ...] = FIG8_STRATEGIES,
              client_region: str = "frankfurt",
              include_backend_bar: bool = True,
              engine: EngineOptions | None = None) -> list[SweepPoint]:
    """Vary the cache size with the workload fixed at Zipf 1.1 (Fig. 8a).

    Raises:
        ValueError: if engine options carry per-region cache sizes — this
            figure sweeps the cache size itself, so a per-region override
            would silently fight the sweep.
    """
    settings = settings or ExperimentSettings.quick()
    if engine is not None:
        sized = [spec.region for spec in engine.region_specs or ()
                 if spec.cache_capacity_bytes is not None]
        if sized:
            raise ValueError(
                f"fig8a sweeps the cache size; per-region cache overrides "
                f"(--region, offending: {sized}) conflict with the sweep"
            )
    workload = settings.workload(skew=1.1)
    points: list[SweepPoint] = []

    if include_backend_bar:
        metrics = _compare_strategies(
            workload, ["backend"], client_region, 0, settings, engine=engine,
        )
        points.append(
            SweepPoint(group="0MB", strategy="backend",
                       mean_latency_ms=metrics["backend"][0],
                       hit_ratio=metrics["backend"][1])
        )

    for size_mb in cache_sizes_mb:
        capacity = size_mb * MEGABYTE
        metrics = _compare_strategies(
            workload, list(strategies), client_region, capacity, settings,
            agar_config=agar_config_for_capacity(capacity), engine=engine,
        )
        for strategy, (mean_latency_ms, hit_ratio) in metrics.items():
            points.append(
                SweepPoint(group=f"{size_mb}MB", strategy=strategy,
                           mean_latency_ms=mean_latency_ms, hit_ratio=hit_ratio)
            )
    return points


def run_fig8b(settings: ExperimentSettings | None = None,
              skews: tuple[float, ...] = FIG8B_SKEWS,
              strategies: tuple[str, ...] = FIG8_STRATEGIES,
              client_region: str = "frankfurt",
              include_uniform: bool = True,
              include_backend_bar: bool = True,
              engine: EngineOptions | None = None) -> list[SweepPoint]:
    """Vary the workload with the cache fixed at 10 MB (Fig. 8b)."""
    settings = settings or ExperimentSettings.quick()
    capacity = settings.cache_capacity_bytes
    points: list[SweepPoint] = []

    workloads: list[tuple[str, WorkloadSpec]] = []
    if include_uniform:
        workloads.append(("uniform", settings.workload(skew=None)))
    workloads.extend((f"zipf-{skew:g}", settings.workload(skew=skew)) for skew in skews)

    if include_backend_bar:
        metrics = _compare_strategies(
            workloads[0][1], ["backend"], client_region, 0, settings, engine=engine,
        )
        points.append(
            SweepPoint(group="backend", strategy="backend",
                       mean_latency_ms=metrics["backend"][0],
                       hit_ratio=metrics["backend"][1])
        )

    for group, workload in workloads:
        metrics = _compare_strategies(
            workload, list(strategies), client_region, capacity, settings,
            agar_config=agar_config_for_capacity(capacity), engine=engine,
        )
        for strategy, (mean_latency_ms, hit_ratio) in metrics.items():
            points.append(
                SweepPoint(group=group, strategy=strategy,
                           mean_latency_ms=mean_latency_ms, hit_ratio=hit_ratio)
            )
    return points


def render_sweep(points: list[SweepPoint], title: str) -> Table:
    """Render a sweep as a table with one row per group, one column per strategy."""
    groups = list(dict.fromkeys(point.group for point in points))
    strategies = list(dict.fromkeys(point.strategy for point in points))
    lookup = {(point.group, point.strategy): point.mean_latency_ms for point in points}
    table = Table(title=title, columns=("group", *strategies))
    for group in groups:
        table.add_row(group, *[lookup.get((group, strategy), float("nan")) for strategy in strategies])
    return table


def agar_lead_by_group(points: list[SweepPoint]) -> dict[str, float]:
    """Agar's latency advantage (%) over the best static policy, per sweep group."""
    leads: dict[str, float] = {}
    groups = {point.group for point in points if point.strategy == "agar"}
    for group in groups:
        latencies = {
            point.strategy: point.mean_latency_ms
            for point in points
            if point.group == group
        }
        summary = improvement_summary(latencies, subject="agar", exclude=("backend",))
        leads[group] = summary["vs_best_pct"]
    return leads
