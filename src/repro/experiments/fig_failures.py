"""Fault-injection sweep: how strategies ride out a region outage and recover.

The paper evaluates Agar on healthy AWS deployments; erasure coding's point,
though, is exactly that reads survive ``n - k`` lost chunks.  This experiment
injects a :class:`~repro.sim.faults.RegionOutage` into the discrete-event
engine and maps the outage response along three axes:

* **outage duration** — swept as fractions of the (measured) clean-run
  duration, so the paper/quick/smoke scales all see comparable windows;
* **read strategy** — Agar versus a static policy;
* **collaboration** — §VI collaborating caches on or off (collaboration
  softens the blow when the caches cover more distinct chunks).

Each sweep point reports the degraded/unavailable read counts, the mean
latency against the clean baseline, and a recovery profile computed from the
windowed latency series of :func:`repro.client.stats.windowed_latency_series`:
p99 before, during and after the outage window plus the number of windows the
deployment needed after the repair until p99 fell back to the pre-outage
level.  The acceptance invariants — degraded reads occur **only** during the
outage, no request fails while at least ``k`` chunks stay reachable, and the
windowed p99 spikes then recovers — are asserted by the test suite for both
the in-process and the sharded engine.  See ``docs/failures.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import Table, percent_difference
from repro.client.resilience import ResilienceConfig
from repro.client.stats import LatencyWindow, windowed_latency_series
from repro.client.strategies import ClientConfig
from repro.experiments.common import (
    EngineOptions,
    ExperimentSettings,
    agar_config_for_capacity,
)
from repro.sim.engine import EngineConfig, EngineResult, EventEngine, RegionSpec
from repro.sim.faults import FaultSchedule, RegionOutage

#: Outage durations swept by default, as fractions of the clean-run duration.
DEFAULT_OUTAGE_FRACTIONS: tuple[float, ...] = (0.15, 0.3)

#: Resilience tier of the hedged legs.  The timeout factor and hedge quantile
#: are deliberately aggressive relative to the topology's jitter (σ = 0.06 on
#: the log-normal links) so retries and hedges actually fire at experiment
#: scale; emergency reconfiguration makes the Agar knapsack re-solve against
#: the survivor topology the moment the outage lands (and again on recovery).
DEFAULT_HEDGED_RESILIENCE = ResilienceConfig(
    retry_budget=1, timeout_factor=1.1, backoff_base_ms=4.0,
    hedge=True, hedge_quantile=0.7, hedge_min_samples=8,
    emergency_reconfiguration=True,
)

#: Region taken down by default.  It must sit *inside* the clients' nearest-k
#: backend plan for the outage to force degraded re-planning: from Frankfurt
#: and Dublin the RS(9, 3) plan drops the furthest three chunks (Sydney's two
#: and one of Tokyo's), so Sao Paulo is the nearest planned region whose loss
#: is actually felt.
DEFAULT_FAULT_REGION = "sao_paulo"

#: Client regions of the swept deployment (a nearby pair, so the
#: collaborative legs mirror the fig_collab setup).
DEFAULT_REGIONS: tuple[str, ...] = ("frankfurt", "dublin")

#: (strategy, collaboration[, hedged]) legs swept by default.  The hedged
#: Agar leg pairs with the plain one so the report shows hedging on/off
#: side by side (p99 during the fault, recovery lag, reaction lag).
DEFAULT_LEGS: tuple[tuple, ...] = (
    ("agar", False),
    ("agar", False, True),
    ("agar", True),
    ("lfu-5", False),
)


def _normalize_legs(legs) -> tuple[tuple[str, bool, bool], ...]:
    """Accept (strategy, collab) or (strategy, collab, hedged) leg tuples."""
    normalized = []
    for leg in legs:
        if len(leg) == 2:
            strategy, collaboration = leg
            hedged = False
        elif len(leg) == 3:
            strategy, collaboration, hedged = leg
        else:
            raise ValueError(f"malformed leg {leg!r} (expected "
                             "(strategy, collaboration[, hedged]))")
        normalized.append((strategy, bool(collaboration), bool(hedged)))
    return tuple(normalized)


def _leg_label(strategy: str, collaboration: bool, hedged: bool) -> str:
    label = f"{strategy}+collab" if collaboration else strategy
    return f"{label}+hedged" if hedged else label

#: The outage starts this far into the run (fraction of the clean duration),
#: leaving a pre-outage span for the recovery baseline.
OUTAGE_START_FRACTION = 0.25

#: Windows per clean-run duration in the recovery time series.
WINDOWS_PER_RUN = 24

#: A post-outage window counts as recovered once its p99 is back within this
#: factor of the pre-outage p99.
RECOVERY_TOLERANCE = 1.2


@dataclass(frozen=True)
class FailurePointRow:
    """One (strategy, collaboration, outage duration) sweep point."""

    strategy: str
    collaboration: bool
    outage_fraction: float
    outage_start_s: float
    outage_end_s: float
    reads: int
    degraded_reads: int
    unavailable_reads: int
    mean_ms: float
    clean_mean_ms: float
    p99_before_ms: float
    p99_during_ms: float
    p99_after_ms: float
    #: Windows after the repair until p99 returned to the pre-outage level;
    #: None when it never did within the observed series.
    recovery_windows: int | None
    #: Whether the leg ran with the hedged/retried resilience tier on.
    hedged: bool = False
    #: Resilience counters of the faulted run (0 when hedging is off).
    retries_total: int = 0
    hedged_reads: int = 0
    hedge_wins: int = 0
    #: p99 of the leg's clean baseline run (the recovery-lag reference).
    clean_p99_ms: float = 0.0
    #: Windows after the repair until p99 fell back within
    #: :data:`RECOVERY_TOLERANCE` of the *clean-baseline* p99 — the
    #: recovery-lag metric; None when it never did within the series.
    recovery_lag_windows: int | None = None
    #: Mean fault-reaction lag of the Agar nodes (seconds between a fault
    #: transition and the next knapsack re-solve); ~0 with emergency
    #: reconfiguration on, up to a reconfiguration period with it off, and
    #: None for legs without resolvable Agar reconfiguration lags.
    reaction_lag_s: float | None = None

    @property
    def leg(self) -> str:
        """Display label of the (strategy, collaboration, hedged) leg."""
        return _leg_label(self.strategy, self.collaboration, self.hedged)

    @property
    def slowdown_pct(self) -> float:
        """Mean-latency penalty of the faulted run vs the clean baseline."""
        return percent_difference(self.mean_ms, self.clean_mean_ms)


@dataclass(frozen=True)
class FailureSweepResult:
    """Everything one `fig_failures` invocation produced."""

    rows: list[FailurePointRow]
    #: Windowed latency series of each leg's *longest* outage, keyed by the
    #: leg label — the recovery curve worth plotting.
    series: dict[str, list[LatencyWindow]]
    fault_region: str
    window_s: float
    sharded: bool
    #: ``FaultSchedule.describe()`` of each leg's longest outage, keyed by
    #: the leg label (the injected windows differ per leg because they are
    #: placed relative to the leg's own clean duration).
    schedules: dict[str, str] | None = None


def _build_config(settings: ExperimentSettings, regions: tuple[str, ...],
                  strategy: str, clients: int, arrival, collaboration: bool,
                  faults: FaultSchedule | None,
                  resilience: ResilienceConfig | None = None) -> EngineConfig:
    capacity = settings.cache_capacity_bytes
    client = (ClientConfig(resilience=resilience) if resilience is not None
              else ClientConfig())
    return EngineConfig(
        workload=settings.workload(skew=1.1),
        regions=tuple(
            RegionSpec(region=region, clients=clients, strategy=strategy)
            for region in regions
        ),
        cache_capacity_bytes=capacity,
        agar=agar_config_for_capacity(capacity),
        topology_seed=settings.seed,
        arrival=arrival,
        client=client,
        collaboration=collaboration,
        collaboration_period_s=30.0 if collaboration else None,
        timer_reconfiguration=True,
        faults=faults,
    )


def _execute(settings: ExperimentSettings, config: EngineConfig,
             sharded: bool):
    """Run one deployment ``settings.runs`` times, keeping every ReadResult.

    Returns ``(results, deployment)`` — the deployment's Agar nodes carry the
    fault-reaction lag measurements accumulated across the runs.
    """
    engine = EventEngine(config, keep_results=True)
    base_seed = config.workload.seed
    engine.topology.latency.reseed(config.topology_seed + base_seed)
    deployment = engine.build_deployment()
    results = []
    for run_index in range(settings.runs):
        seed = base_seed + run_index
        if sharded:
            results.append(engine.execute_sharded(deployment, seed))
        else:
            results.append(engine.execute(deployment, seed))
    return results, deployment


def _reaction_lag_s(deployment) -> float | None:
    """Mean Agar fault-reaction lag across the deployment's nodes, if any.

    Sharded runs mutate deepcopies/forked copies of the deployment, so their
    lags are not observable here; the column shows "-" in sharded mode.
    """
    lags: list[float] = []
    for strategy in deployment.strategies:
        node = getattr(strategy, "node", None)
        if node is not None:
            lags.extend(node.fault_reaction_lags_s)
    return sum(lags) / len(lags) if lags else None


def _duration_s(results: list[EngineResult]) -> float:
    """Longest per-region duration over the runs (the shared time axis)."""
    return max(
        region_result.duration_s
        for result in results
        for region_result in result.regions.values()
    )


def _collect_reads(results: list[EngineResult]):
    """Every retained ReadResult across runs and regions (shared time axis:
    each run restarts its clock at zero, so windows pool the repetitions)."""
    reads = []
    for result in results:
        for region_result in result.regions.values():
            reads.extend(region_result.results)
    return reads


def _merged_stats(results: list[EngineResult]):
    merged = results[0].overall_stats()
    for result in results[1:]:
        merged = merged.merge(result.overall_stats())
    return merged


def _phase_p99(windows: list[LatencyWindow], start_s: float,
               end_s: float | None) -> float:
    """Max windowed p99 over [start_s, end_s) — the phase's worst window."""
    values = [
        window.p99_ms
        for window in windows
        if window.reads > 0 and window.start_s >= start_s
        and (end_s is None or window.start_s < end_s)
    ]
    return max(values) if values else 0.0


def _recovery_windows(windows: list[LatencyWindow], outage_end_s: float,
                      baseline_p99_ms: float) -> int | None:
    """Windows after the repair until p99 re-enters the recovery band."""
    position = 0
    for window in windows:
        if window.start_s < outage_end_s:
            continue
        if window.reads == 0 or \
                window.p99_ms <= baseline_p99_ms * RECOVERY_TOLERANCE:
            return position
        position += 1
    return None


def run_fig_failures(settings: ExperimentSettings | None = None,
                     options: EngineOptions | None = None,
                     outage_fractions: tuple[float, ...] | None = None,
                     fault_region: str = DEFAULT_FAULT_REGION,
                     legs: tuple[tuple[str, bool], ...] | None = None,
                     sharded: bool = False) -> FailureSweepResult:
    """Run the outage sweep.

    For every (strategy, collaboration) leg a clean baseline run measures the
    leg's duration and pre-fault latency profile; the outage window is then
    placed at ``OUTAGE_START_FRACTION`` of that duration and swept over
    ``outage_fractions`` of it.  ``options`` contributes client count,
    arrival process and (via ``--regions``) the deployment's regions.
    """
    settings = settings or ExperimentSettings.quick()
    options = options or EngineOptions()
    clients = options.clients_per_region
    arrival = options.arrival_spec()
    regions = options.regions or DEFAULT_REGIONS
    if fault_region in regions:
        raise ValueError(
            f"fault region {fault_region!r} is a client region; take down a "
            "backend-only region so clients keep running")
    fractions = (DEFAULT_OUTAGE_FRACTIONS if outage_fractions is None
                 else tuple(sorted(outage_fractions)))
    if not fractions:
        raise ValueError("outage_fractions must not be empty")
    if any(not 0.0 < fraction < 1.0 for fraction in fractions):
        raise ValueError("outage fractions must lie strictly between 0 and 1")
    legs = _normalize_legs(DEFAULT_LEGS if legs is None else legs)

    rows: list[FailurePointRow] = []
    series: dict[str, list[LatencyWindow]] = {}
    schedules: dict[str, str] = {}
    window_s = 0.0
    for strategy, collaboration, hedged in legs:
        resilience = DEFAULT_HEDGED_RESILIENCE if hedged else None
        clean_config = _build_config(settings, regions, strategy, clients,
                                     arrival, collaboration, faults=None,
                                     resilience=resilience)
        clean_runs, _ = _execute(settings, clean_config, sharded)
        duration = _duration_s(clean_runs)
        window_s = max(window_s, duration / WINDOWS_PER_RUN)
        leg_window = duration / WINDOWS_PER_RUN
        clean_stats = _merged_stats(clean_runs)
        clean_windows = windowed_latency_series(
            _collect_reads(clean_runs), leg_window, end_s=duration)
        outage_start = duration * OUTAGE_START_FRACTION

        leg_label = _leg_label(strategy, collaboration, hedged)
        for fraction in fractions:
            outage_end = outage_start + duration * fraction
            faults = FaultSchedule([
                RegionOutage(fault_region, start_s=outage_start,
                             end_s=outage_end),
            ])
            config = _build_config(settings, regions, strategy, clients,
                                   arrival, collaboration, faults=faults,
                                   resilience=resilience)
            runs, deployment = _execute(settings, config, sharded)
            stats = _merged_stats(runs)
            reads = _collect_reads(runs)
            faulted_duration = max(duration, _duration_s(runs))
            windows = windowed_latency_series(reads, leg_window,
                                              end_s=faulted_duration)
            before_p99 = _phase_p99(windows, 0.0, outage_start)
            if before_p99 == 0.0:
                before_p99 = _phase_p99(clean_windows, 0.0, outage_start)
            clean_p99 = clean_stats.p99_latency_ms
            rows.append(FailurePointRow(
                strategy=strategy,
                collaboration=collaboration,
                outage_fraction=fraction,
                outage_start_s=outage_start,
                outage_end_s=outage_end,
                reads=stats.count,
                degraded_reads=stats.degraded_reads,
                unavailable_reads=stats.unavailable_reads,
                mean_ms=stats.mean_latency_ms,
                clean_mean_ms=clean_stats.mean_latency_ms,
                p99_before_ms=before_p99,
                p99_during_ms=_phase_p99(windows, outage_start, outage_end),
                p99_after_ms=_phase_p99(windows, outage_end, None),
                recovery_windows=_recovery_windows(windows, outage_end,
                                                   before_p99),
                hedged=hedged,
                retries_total=stats.retries_total,
                hedged_reads=stats.hedged_reads,
                hedge_wins=stats.hedge_wins,
                clean_p99_ms=clean_p99,
                recovery_lag_windows=_recovery_windows(windows, outage_end,
                                                       clean_p99),
                reaction_lag_s=(None if sharded
                                else _reaction_lag_s(deployment)),
            ))
            if fraction == fractions[-1]:
                series[leg_label] = windows
                schedules[leg_label] = faults.describe()
    return FailureSweepResult(rows=rows, series=series,
                              fault_region=fault_region, window_s=window_s,
                              sharded=sharded, schedules=schedules)


def render_fig_failures(result: FailureSweepResult) -> str:
    """Render the sweep as a figure-style report (table + recovery curves)."""
    mode = "sharded engine" if result.sharded else "in-process engine"
    table = Table(
        title=(f"Outage sweep — {result.fault_region} down, degraded reads "
               f"and recovery ({mode})"),
        columns=("leg", "hedging", "outage (frac)", "outage (s)", "reads",
                 "degraded", "unavailable", "retries", "hedges (won)",
                 "mean (ms)", "clean mean (ms)", "slowdown (%)",
                 "p99 before", "p99 during", "p99 after",
                 "recovery (windows)", "recovery lag (windows)",
                 "reaction lag (s)"),
    )
    for row in result.rows:
        table.add_row(
            row.leg,
            "on" if row.hedged else "off",
            row.outage_fraction,
            row.outage_end_s - row.outage_start_s,
            row.reads,
            row.degraded_reads,
            row.unavailable_reads,
            row.retries_total,
            f"{row.hedged_reads} ({row.hedge_wins})",
            row.mean_ms,
            row.clean_mean_ms,
            row.slowdown_pct,
            row.p99_before_ms,
            row.p99_during_ms,
            row.p99_after_ms,
            "-" if row.recovery_windows is None else row.recovery_windows,
            "-" if row.recovery_lag_windows is None
            else row.recovery_lag_windows,
            "-" if row.reaction_lag_s is None else f"{row.reaction_lag_s:.2f}",
        )
    lines = [table.render(), ""]
    if result.schedules:
        lines.append("Injected fault windows (longest sweep point per leg):")
        for leg, description in result.schedules.items():
            lines.append(f"  {leg}:")
            lines.extend(f"    {line}" for line in description.splitlines())
        lines.append("")
    lines.append("Windowed p99 of each leg's longest outage "
                 "(* marks the outage window):")
    for leg, windows in result.series.items():
        outage = next(row for row in reversed(result.rows)
                      if row.leg == leg)
        lines.append(f"  {leg}:")
        for window in windows:
            in_outage = (window.start_s < outage.outage_end_s
                         and window.end_s > outage.outage_start_s)
            marker = "*" if in_outage else " "
            lines.append(
                f"   {marker} [{window.start_s:8.1f}s, {window.end_s:8.1f}s) "
                f"reads={window.reads:4d} p99={window.p99_ms:9.1f} ms "
                f"degraded={window.degraded:3d} unavailable={window.unavailable:3d}"
            )
    return "\n".join(lines)
