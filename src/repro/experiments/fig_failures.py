"""Fault-injection sweep: how strategies ride out a region outage and recover.

The paper evaluates Agar on healthy AWS deployments; erasure coding's point,
though, is exactly that reads survive ``n - k`` lost chunks.  This experiment
injects a :class:`~repro.sim.faults.RegionOutage` into the discrete-event
engine and maps the outage response along three axes:

* **outage duration** — swept as fractions of the (measured) clean-run
  duration, so the paper/quick/smoke scales all see comparable windows;
* **read strategy** — Agar versus a static policy;
* **collaboration** — §VI collaborating caches on or off (collaboration
  softens the blow when the caches cover more distinct chunks).

Each sweep point reports the degraded/unavailable read counts, the mean
latency against the clean baseline, and a recovery profile computed from the
windowed latency series of :func:`repro.client.stats.windowed_latency_series`:
p99 before, during and after the outage window plus the number of windows the
deployment needed after the repair until p99 fell back to the pre-outage
level.  The acceptance invariants — degraded reads occur **only** during the
outage, no request fails while at least ``k`` chunks stay reachable, and the
windowed p99 spikes then recovers — are asserted by the test suite for both
the in-process and the sharded engine.  See ``docs/failures.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import Table, percent_difference
from repro.client.stats import LatencyWindow, windowed_latency_series
from repro.experiments.common import (
    EngineOptions,
    ExperimentSettings,
    agar_config_for_capacity,
)
from repro.sim.engine import EngineConfig, EngineResult, EventEngine, RegionSpec
from repro.sim.faults import FaultSchedule, RegionOutage

#: Outage durations swept by default, as fractions of the clean-run duration.
DEFAULT_OUTAGE_FRACTIONS: tuple[float, ...] = (0.15, 0.3)

#: Region taken down by default.  It must sit *inside* the clients' nearest-k
#: backend plan for the outage to force degraded re-planning: from Frankfurt
#: and Dublin the RS(9, 3) plan drops the furthest three chunks (Sydney's two
#: and one of Tokyo's), so Sao Paulo is the nearest planned region whose loss
#: is actually felt.
DEFAULT_FAULT_REGION = "sao_paulo"

#: Client regions of the swept deployment (a nearby pair, so the
#: collaborative legs mirror the fig_collab setup).
DEFAULT_REGIONS: tuple[str, ...] = ("frankfurt", "dublin")

#: (strategy, collaboration) legs swept by default.
DEFAULT_LEGS: tuple[tuple[str, bool], ...] = (
    ("agar", False),
    ("agar", True),
    ("lfu-5", False),
)

#: The outage starts this far into the run (fraction of the clean duration),
#: leaving a pre-outage span for the recovery baseline.
OUTAGE_START_FRACTION = 0.25

#: Windows per clean-run duration in the recovery time series.
WINDOWS_PER_RUN = 24

#: A post-outage window counts as recovered once its p99 is back within this
#: factor of the pre-outage p99.
RECOVERY_TOLERANCE = 1.2


@dataclass(frozen=True)
class FailurePointRow:
    """One (strategy, collaboration, outage duration) sweep point."""

    strategy: str
    collaboration: bool
    outage_fraction: float
    outage_start_s: float
    outage_end_s: float
    reads: int
    degraded_reads: int
    unavailable_reads: int
    mean_ms: float
    clean_mean_ms: float
    p99_before_ms: float
    p99_during_ms: float
    p99_after_ms: float
    #: Windows after the repair until p99 returned to the pre-outage level;
    #: None when it never did within the observed series.
    recovery_windows: int | None

    @property
    def leg(self) -> str:
        """Display label of the (strategy, collaboration) leg."""
        return f"{self.strategy}+collab" if self.collaboration else self.strategy

    @property
    def slowdown_pct(self) -> float:
        """Mean-latency penalty of the faulted run vs the clean baseline."""
        return percent_difference(self.mean_ms, self.clean_mean_ms)


@dataclass(frozen=True)
class FailureSweepResult:
    """Everything one `fig_failures` invocation produced."""

    rows: list[FailurePointRow]
    #: Windowed latency series of each leg's *longest* outage, keyed by the
    #: leg label — the recovery curve worth plotting.
    series: dict[str, list[LatencyWindow]]
    fault_region: str
    window_s: float
    sharded: bool


def _build_config(settings: ExperimentSettings, regions: tuple[str, ...],
                  strategy: str, clients: int, arrival, collaboration: bool,
                  faults: FaultSchedule | None) -> EngineConfig:
    capacity = settings.cache_capacity_bytes
    return EngineConfig(
        workload=settings.workload(skew=1.1),
        regions=tuple(
            RegionSpec(region=region, clients=clients, strategy=strategy)
            for region in regions
        ),
        cache_capacity_bytes=capacity,
        agar=agar_config_for_capacity(capacity),
        topology_seed=settings.seed,
        arrival=arrival,
        collaboration=collaboration,
        collaboration_period_s=30.0 if collaboration else None,
        timer_reconfiguration=True,
        faults=faults,
    )


def _execute(settings: ExperimentSettings, config: EngineConfig,
             sharded: bool) -> list[EngineResult]:
    """Run one deployment ``settings.runs`` times, keeping every ReadResult."""
    engine = EventEngine(config, keep_results=True)
    base_seed = config.workload.seed
    engine.topology.latency.reseed(config.topology_seed + base_seed)
    deployment = engine.build_deployment()
    results = []
    for run_index in range(settings.runs):
        seed = base_seed + run_index
        if sharded:
            results.append(engine.execute_sharded(deployment, seed))
        else:
            results.append(engine.execute(deployment, seed))
    return results


def _duration_s(results: list[EngineResult]) -> float:
    """Longest per-region duration over the runs (the shared time axis)."""
    return max(
        region_result.duration_s
        for result in results
        for region_result in result.regions.values()
    )


def _collect_reads(results: list[EngineResult]):
    """Every retained ReadResult across runs and regions (shared time axis:
    each run restarts its clock at zero, so windows pool the repetitions)."""
    reads = []
    for result in results:
        for region_result in result.regions.values():
            reads.extend(region_result.results)
    return reads


def _merged_stats(results: list[EngineResult]):
    merged = results[0].overall_stats()
    for result in results[1:]:
        merged = merged.merge(result.overall_stats())
    return merged


def _phase_p99(windows: list[LatencyWindow], start_s: float,
               end_s: float | None) -> float:
    """Max windowed p99 over [start_s, end_s) — the phase's worst window."""
    values = [
        window.p99_ms
        for window in windows
        if window.reads > 0 and window.start_s >= start_s
        and (end_s is None or window.start_s < end_s)
    ]
    return max(values) if values else 0.0


def _recovery_windows(windows: list[LatencyWindow], outage_end_s: float,
                      baseline_p99_ms: float) -> int | None:
    """Windows after the repair until p99 re-enters the recovery band."""
    position = 0
    for window in windows:
        if window.start_s < outage_end_s:
            continue
        if window.reads == 0 or \
                window.p99_ms <= baseline_p99_ms * RECOVERY_TOLERANCE:
            return position
        position += 1
    return None


def run_fig_failures(settings: ExperimentSettings | None = None,
                     options: EngineOptions | None = None,
                     outage_fractions: tuple[float, ...] | None = None,
                     fault_region: str = DEFAULT_FAULT_REGION,
                     legs: tuple[tuple[str, bool], ...] | None = None,
                     sharded: bool = False) -> FailureSweepResult:
    """Run the outage sweep.

    For every (strategy, collaboration) leg a clean baseline run measures the
    leg's duration and pre-fault latency profile; the outage window is then
    placed at ``OUTAGE_START_FRACTION`` of that duration and swept over
    ``outage_fractions`` of it.  ``options`` contributes client count,
    arrival process and (via ``--regions``) the deployment's regions.
    """
    settings = settings or ExperimentSettings.quick()
    options = options or EngineOptions()
    clients = options.clients_per_region
    arrival = options.arrival_spec()
    regions = options.regions or DEFAULT_REGIONS
    if fault_region in regions:
        raise ValueError(
            f"fault region {fault_region!r} is a client region; take down a "
            "backend-only region so clients keep running")
    fractions = (DEFAULT_OUTAGE_FRACTIONS if outage_fractions is None
                 else tuple(sorted(outage_fractions)))
    if not fractions:
        raise ValueError("outage_fractions must not be empty")
    if any(not 0.0 < fraction < 1.0 for fraction in fractions):
        raise ValueError("outage fractions must lie strictly between 0 and 1")
    legs = DEFAULT_LEGS if legs is None else tuple(legs)

    rows: list[FailurePointRow] = []
    series: dict[str, list[LatencyWindow]] = {}
    window_s = 0.0
    for strategy, collaboration in legs:
        clean_config = _build_config(settings, regions, strategy, clients,
                                     arrival, collaboration, faults=None)
        clean_runs = _execute(settings, clean_config, sharded)
        duration = _duration_s(clean_runs)
        window_s = max(window_s, duration / WINDOWS_PER_RUN)
        leg_window = duration / WINDOWS_PER_RUN
        clean_stats = _merged_stats(clean_runs)
        clean_windows = windowed_latency_series(
            _collect_reads(clean_runs), leg_window, end_s=duration)
        outage_start = duration * OUTAGE_START_FRACTION

        leg_label = f"{strategy}+collab" if collaboration else strategy
        for fraction in fractions:
            outage_end = outage_start + duration * fraction
            faults = FaultSchedule([
                RegionOutage(fault_region, start_s=outage_start,
                             end_s=outage_end),
            ])
            config = _build_config(settings, regions, strategy, clients,
                                   arrival, collaboration, faults=faults)
            runs = _execute(settings, config, sharded)
            stats = _merged_stats(runs)
            reads = _collect_reads(runs)
            faulted_duration = max(duration, _duration_s(runs))
            windows = windowed_latency_series(reads, leg_window,
                                              end_s=faulted_duration)
            before_p99 = _phase_p99(windows, 0.0, outage_start)
            if before_p99 == 0.0:
                before_p99 = _phase_p99(clean_windows, 0.0, outage_start)
            rows.append(FailurePointRow(
                strategy=strategy,
                collaboration=collaboration,
                outage_fraction=fraction,
                outage_start_s=outage_start,
                outage_end_s=outage_end,
                reads=stats.count,
                degraded_reads=stats.degraded_reads,
                unavailable_reads=stats.unavailable_reads,
                mean_ms=stats.mean_latency_ms,
                clean_mean_ms=clean_stats.mean_latency_ms,
                p99_before_ms=before_p99,
                p99_during_ms=_phase_p99(windows, outage_start, outage_end),
                p99_after_ms=_phase_p99(windows, outage_end, None),
                recovery_windows=_recovery_windows(windows, outage_end,
                                                   before_p99),
            ))
            if fraction == fractions[-1]:
                series[leg_label] = windows
    return FailureSweepResult(rows=rows, series=series,
                              fault_region=fault_region, window_s=window_s,
                              sharded=sharded)


def render_fig_failures(result: FailureSweepResult) -> str:
    """Render the sweep as a figure-style report (table + recovery curves)."""
    mode = "sharded engine" if result.sharded else "in-process engine"
    table = Table(
        title=(f"Outage sweep — {result.fault_region} down, degraded reads "
               f"and recovery ({mode})"),
        columns=("leg", "outage (frac)", "outage (s)", "reads", "degraded",
                 "unavailable", "mean (ms)", "clean mean (ms)",
                 "slowdown (%)", "p99 before", "p99 during", "p99 after",
                 "recovery (windows)"),
    )
    for row in result.rows:
        table.add_row(
            row.leg,
            row.outage_fraction,
            row.outage_end_s - row.outage_start_s,
            row.reads,
            row.degraded_reads,
            row.unavailable_reads,
            row.mean_ms,
            row.clean_mean_ms,
            row.slowdown_pct,
            row.p99_before_ms,
            row.p99_during_ms,
            row.p99_after_ms,
            "-" if row.recovery_windows is None else row.recovery_windows,
        )
    lines = [table.render(), ""]
    lines.append("Windowed p99 of each leg's longest outage "
                 "(* marks the outage window):")
    for leg, windows in result.series.items():
        outage = next(row for row in reversed(result.rows)
                      if row.leg == leg)
        lines.append(f"  {leg}:")
        for window in windows:
            in_outage = (window.start_s < outage.outage_end_s
                         and window.end_s > outage.outage_start_s)
            marker = "*" if in_outage else " "
            lines.append(
                f"   {marker} [{window.start_s:8.1f}s, {window.end_s:8.1f}s) "
                f"reads={window.reads:4d} p99={window.p99_ms:9.1f} ms "
                f"degraded={window.degraded:3d} unavailable={window.unavailable:3d}"
            )
    return "\n".join(lines)
