"""Multi-region deployments on the discrete-event engine.

Two entry points:

* :func:`run_engine_comparison` — the engine-backed counterpart of
  ``run_comparison``: one multi-region deployment per strategy, repeated over
  several seeds against the same warm deployment, aggregated per region.  The
  Fig. 6/7/8 runners use it when the CLI's engine flags are active.
* :func:`run_multiregion_scaling` — the multi-region scaling experiment: a
  fixed deployment (default: Frankfurt + Sydney, Poisson arrivals,
  collaboration on) swept over the number of concurrent clients per region,
  reporting per-region mean/p99 latency, hit ratio and throughput.  This is
  the scenario the single-client loop could not express: contention on the
  shared per-region cache and the throughput/latency trade-off it causes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import Table
from repro.core.agar_node import AgarNodeConfig
from repro.experiments.common import (
    EVALUATION_REGIONS,
    EngineOptions,
    ExperimentSettings,
    agar_config_for_capacity,
)
from repro.geo.topology import Topology
from repro.sim.engine import EngineConfig, EventEngine, RegionRunResult, RegionSpec
from repro.workload.workload import ArrivalSpec, WorkloadSpec, poisson_arrivals


@dataclass(frozen=True)
class RegionAggregate:
    """Per-region metrics averaged over repeated engine runs."""

    region: str
    strategy: str
    clients: int
    runs: int
    mean_latency_ms: float
    p99_latency_ms: float
    hit_ratio: float
    full_hit_ratio: float
    throughput_rps: float
    per_run_latency_ms: list[float]


def _aggregate_region(results: list[RegionRunResult]) -> RegionAggregate:
    first = results[0]
    latencies = [result.mean_latency_ms for result in results]
    return RegionAggregate(
        region=first.region,
        strategy=first.strategy,
        clients=first.clients,
        runs=len(results),
        mean_latency_ms=sum(latencies) / len(latencies),
        p99_latency_ms=sum(r.p99_latency_ms for r in results) / len(results),
        hit_ratio=sum(r.hit_ratio for r in results) / len(results),
        full_hit_ratio=sum(r.stats.full_hit_ratio for r in results) / len(results),
        throughput_rps=sum(r.throughput_rps for r in results) / len(results),
        per_run_latency_ms=latencies,
    )


def run_engine_many(config: EngineConfig, runs: int, base_seed: int | None = None,
                    topology: Topology | None = None) -> dict[str, RegionAggregate]:
    """Repeat one engine deployment over several seeds and aggregate per region.

    Runs execute against the same long-running (warm) deployment, mirroring
    ``Simulation.run_many``'s default.
    """
    if runs <= 0:
        raise ValueError("runs must be positive")
    engine = EventEngine(config, topology=topology)
    base = config.workload.seed if base_seed is None else base_seed
    engine.topology.latency.reseed(config.topology_seed + base)
    deployment = engine.build_deployment()

    per_region: dict[str, list[RegionRunResult]] = {}
    for run_index in range(runs):
        result = engine.execute(deployment, seed=base + run_index)
        for region, region_result in result.regions.items():
            per_region.setdefault(region, []).append(region_result)
    return {region: _aggregate_region(results) for region, results in per_region.items()}


def run_engine_comparison(workload: WorkloadSpec, strategies: list[str],
                          regions: tuple[str, ...], cache_capacity_bytes: int,
                          runs: int = 5,
                          clients_per_region: int = 1,
                          arrival: ArrivalSpec | None = None,
                          collaboration: bool = False,
                          agar_config: AgarNodeConfig | None = None,
                          topology_seed: int = 0,
                          topology: Topology | None = None
                          ) -> dict[str, dict[str, RegionAggregate]]:
    """Engine-backed strategy comparison: one deployment per strategy.

    All listed regions run simultaneously in one simulated deployment (unlike
    the classic path, which simulates each region separately), so jitter and
    reconfiguration interleave across regions.  Collaboration is applied only
    to the ``agar`` strategy — the static baselines have no nodes to
    collaborate.

    Returns ``{strategy: {region: RegionAggregate}}``.
    """
    comparison: dict[str, dict[str, RegionAggregate]] = {}
    for strategy in strategies:
        config = EngineConfig(
            workload=workload,
            regions=tuple(
                RegionSpec(region=region, clients=clients_per_region, strategy=strategy)
                for region in regions
            ),
            cache_capacity_bytes=cache_capacity_bytes,
            agar=agar_config,
            topology_seed=topology_seed,
            arrival=arrival or ArrivalSpec(),
            collaboration=collaboration and strategy == "agar",
        )
        comparison[strategy] = run_engine_many(config, runs=runs, topology=topology)
    return comparison


# ---------------------------------------------------------------------- #
# The multi-region scaling experiment
# ---------------------------------------------------------------------- #
#: Client counts swept by the scaling experiment.
DEFAULT_CLIENT_SCALING: tuple[int, ...] = (1, 2, 4, 8)

#: Default per-client Poisson arrival rate (requests/second).
DEFAULT_ARRIVAL_RATE_RPS = 2.0


@dataclass(frozen=True)
class MultiRegionRow:
    """One row of the scaling experiment's report."""

    clients_per_region: int
    region: str
    mean_latency_ms: float
    p99_latency_ms: float
    hit_ratio: float
    throughput_rps: float


def run_multiregion_scaling(settings: ExperimentSettings | None = None,
                            options: EngineOptions | None = None,
                            strategy: str = "agar",
                            client_scaling: tuple[int, ...] | None = None
                            ) -> list[MultiRegionRow]:
    """Sweep concurrent clients per region on a fixed multi-region deployment.

    Defaults follow the acceptance scenario: two regions (Frankfurt, Sydney),
    Poisson arrivals, collaboration on.  The sweep covers
    ``client_scaling`` (default 1/2/4/8, extended by the requested
    ``clients_per_region`` if it is not already included).
    """
    settings = settings or ExperimentSettings.quick()
    options = options or EngineOptions(
        regions=EVALUATION_REGIONS,
        clients_per_region=4,
        arrival_rate_rps=DEFAULT_ARRIVAL_RATE_RPS,
        collaboration=True,
    )
    regions = options.effective_regions(EVALUATION_REGIONS)
    arrival = options.arrival_spec()
    if client_scaling is None:
        client_scaling = tuple(sorted(set(DEFAULT_CLIENT_SCALING)
                                      | {options.clients_per_region}))
    capacity = settings.cache_capacity_bytes
    workload = settings.workload(skew=1.1)

    rows: list[MultiRegionRow] = []
    for clients in client_scaling:
        config = EngineConfig(
            workload=workload,
            regions=tuple(RegionSpec(region=region, clients=clients, strategy=strategy)
                          for region in regions),
            cache_capacity_bytes=capacity,
            agar=agar_config_for_capacity(capacity),
            topology_seed=settings.seed,
            arrival=arrival,
            collaboration=options.collaboration and strategy == "agar",
        )
        aggregates = run_engine_many(config, runs=settings.runs)
        for region in regions:
            aggregate = aggregates[region]
            rows.append(
                MultiRegionRow(
                    clients_per_region=clients,
                    region=region,
                    mean_latency_ms=aggregate.mean_latency_ms,
                    p99_latency_ms=aggregate.p99_latency_ms,
                    hit_ratio=aggregate.hit_ratio,
                    throughput_rps=aggregate.throughput_rps,
                )
            )
    return rows


def render_multiregion(rows: list[MultiRegionRow],
                       options: EngineOptions | None = None) -> Table:
    """Render the scaling experiment as a report table."""
    title = "Multi-region scaling — per-region latency, hit ratio and throughput"
    if options is not None:
        loop = ("poisson @ %.2g rps" % options.arrival_rate_rps
                if options.arrival_rate_rps else "closed loop")
        collab = "collaboration on" if options.collaboration else "collaboration off"
        title += f" ({loop}, {collab})"
    table = Table(
        title=title,
        columns=("clients/region", "region", "mean (ms)", "p99 (ms)",
                 "hit ratio (%)", "throughput (req/s)"),
    )
    for row in rows:
        table.add_row(
            row.clients_per_region,
            row.region,
            row.mean_latency_ms,
            row.p99_latency_ms,
            row.hit_ratio * 100.0,
            row.throughput_rps,
        )
    return table
