"""Multi-region deployments on the discrete-event engine.

Two entry points:

* :func:`run_engine_comparison` — the engine-backed counterpart of
  ``run_comparison``: one multi-region deployment per strategy, repeated over
  several seeds against the same warm deployment, aggregated per region.  The
  Fig. 6/7/8 runners use it when the CLI's engine flags are active.
* :func:`run_multiregion_scaling` — the multi-region scaling experiment: a
  fixed deployment (default: Frankfurt + Sydney, Poisson arrivals,
  collaboration on) swept over the number of concurrent clients per region,
  reporting per-region mean/p99 latency, hit ratio and throughput.  This is
  the scenario the single-client loop could not express: contention on the
  shared per-region cache and the throughput/latency trade-off it causes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import Table
from repro.core.agar_node import AgarNodeConfig
from repro.experiments.common import (
    EVALUATION_REGIONS,
    EngineOptions,
    ExperimentSettings,
    RegionSpecOption,
    agar_config_for_capacity,
    engine_region_spec,
)
from repro.geo.topology import Topology
from repro.sim.engine import (
    DeploymentAggregate,
    EngineConfig,
    EngineResult,
    EventEngine,
    RegionRunResult,
    RegionSpec,
)
from repro.workload.workload import ArrivalSpec, WorkloadSpec, poisson_arrivals

#: Region label of deployment-wide aggregate rows in reports.
DEPLOYMENT_LABEL = "all"


@dataclass(frozen=True)
class RegionAggregate:
    """Per-region metrics averaged over repeated engine runs."""

    region: str
    strategy: str
    clients: int
    runs: int
    mean_latency_ms: float
    p50_latency_ms: float
    p95_latency_ms: float
    p99_latency_ms: float
    hit_ratio: float
    full_hit_ratio: float
    throughput_rps: float
    #: Chunks served from neighbouring regions' caches, averaged per run
    #: (§VI neighbour reads; 0 outside collaborative deployments).
    neighbor_chunks: float
    per_run_latency_ms: list[float]


def _aggregate_region(results: list[RegionRunResult]) -> RegionAggregate:
    first = results[0]
    latencies = [result.mean_latency_ms for result in results]
    count = len(results)
    return RegionAggregate(
        region=first.region,
        strategy=first.strategy,
        clients=first.clients,
        runs=count,
        mean_latency_ms=sum(latencies) / count,
        p50_latency_ms=sum(r.stats.p50_latency_ms for r in results) / count,
        p95_latency_ms=sum(r.stats.p95_latency_ms for r in results) / count,
        p99_latency_ms=sum(r.p99_latency_ms for r in results) / count,
        hit_ratio=sum(r.hit_ratio for r in results) / count,
        full_hit_ratio=sum(r.stats.full_hit_ratio for r in results) / count,
        throughput_rps=sum(r.throughput_rps for r in results) / count,
        neighbor_chunks=sum(r.stats.neighbor_chunks_total for r in results) / count,
        per_run_latency_ms=latencies,
    )


def _aggregate_deployment(config: EngineConfig,
                          aggregates: list[DeploymentAggregate]) -> RegionAggregate:
    """Average the per-run deployment-wide aggregates into one report row.

    Percentiles here are percentiles of the merged per-read distribution of
    each run (see :meth:`EngineResult.aggregate`), averaged over runs — not
    averages of per-region percentiles.
    """
    strategies = sorted({spec.strategy for spec in config.regions})
    count = len(aggregates)
    latencies = [aggregate.mean_latency_ms for aggregate in aggregates]
    return RegionAggregate(
        region=DEPLOYMENT_LABEL,
        strategy=strategies[0] if len(strategies) == 1 else "+".join(strategies),
        clients=config.total_clients,
        runs=count,
        mean_latency_ms=sum(latencies) / count,
        p50_latency_ms=sum(a.p50_latency_ms for a in aggregates) / count,
        p95_latency_ms=sum(a.p95_latency_ms for a in aggregates) / count,
        p99_latency_ms=sum(a.p99_latency_ms for a in aggregates) / count,
        hit_ratio=sum(a.hit_ratio for a in aggregates) / count,
        full_hit_ratio=sum(a.full_hit_ratio for a in aggregates) / count,
        throughput_rps=sum(a.throughput_rps for a in aggregates) / count,
        neighbor_chunks=sum(a.neighbor_chunks for a in aggregates) / count,
        per_run_latency_ms=latencies,
    )


@dataclass(frozen=True)
class EngineRunsResult:
    """Aggregates of repeated engine runs: per region plus deployment-wide.

    Behaves like the former per-region mapping (``result[region]``,
    ``.items()``, ``.values()``) so existing figure runners keep working, and
    additionally carries the deployment-wide aggregate (merged percentiles,
    combined hit ratio, total throughput).
    """

    regions: dict[str, RegionAggregate]
    deployment: RegionAggregate

    def __getitem__(self, region: str) -> RegionAggregate:
        return self.regions[region]

    def __iter__(self):
        return iter(self.regions)

    def __len__(self) -> int:
        return len(self.regions)

    def items(self):
        """Per-region items, mirroring the mapping interface."""
        return self.regions.items()

    def values(self):
        """Per-region aggregates, mirroring the mapping interface."""
        return self.regions.values()


def run_engine_many(config: EngineConfig, runs: int, base_seed: int | None = None,
                    topology: Topology | None = None) -> EngineRunsResult:
    """Repeat one engine deployment over several seeds and aggregate.

    Runs execute against the same long-running (warm) deployment, mirroring
    ``Simulation.run_many``'s default.  Returns per-region aggregates plus
    the deployment-wide aggregate of each run's merged statistics.
    """
    if runs <= 0:
        raise ValueError("runs must be positive")
    engine = EventEngine(config, topology=topology)
    base = config.workload.seed if base_seed is None else base_seed
    engine.topology.latency.reseed(config.topology_seed + base)
    deployment = engine.build_deployment()

    per_region: dict[str, list[RegionRunResult]] = {}
    per_run: list[DeploymentAggregate] = []
    for run_index in range(runs):
        result: EngineResult = engine.execute(deployment, seed=base + run_index)
        per_run.append(result.aggregate())
        for region, region_result in result.regions.items():
            per_region.setdefault(region, []).append(region_result)
    return EngineRunsResult(
        regions={region: _aggregate_region(results)
                 for region, results in per_region.items()},
        deployment=_aggregate_deployment(config, per_run),
    )


def run_engine_comparison(workload: WorkloadSpec, strategies: list[str],
                          regions: tuple[str, ...], cache_capacity_bytes: int,
                          runs: int = 5,
                          clients_per_region: int = 1,
                          arrival: ArrivalSpec | None = None,
                          collaboration: bool = False,
                          agar_config: AgarNodeConfig | None = None,
                          topology_seed: int = 0,
                          topology: Topology | None = None,
                          region_specs: tuple[RegionSpecOption, ...] | None = None
                          ) -> dict[str, EngineRunsResult]:
    """Engine-backed strategy comparison: one deployment per strategy.

    All listed regions run simultaneously in one simulated deployment (unlike
    the classic path, which simulates each region separately), so jitter and
    reconfiguration interleave across regions.  Collaboration is applied only
    when every region of the deployment runs the ``agar`` strategy — the
    static baselines have no nodes to collaborate.

    ``region_specs`` describes a heterogeneous deployment (CLI ``--region``
    flags): a region with a pinned strategy keeps it across the whole sweep,
    and per-region cache sizes override ``cache_capacity_bytes``.

    Returns ``{strategy: EngineRunsResult}``.
    """
    comparison: dict[str, EngineRunsResult] = {}
    for strategy in strategies:
        if region_specs:
            deployment_regions = tuple(
                engine_region_spec(spec, strategy, clients_per_region)
                for spec in region_specs
            )
        else:
            deployment_regions = tuple(
                RegionSpec(region=region, clients=clients_per_region, strategy=strategy)
                for region in regions
            )
        all_agar = all(spec.strategy == "agar" for spec in deployment_regions)
        config = EngineConfig(
            workload=workload,
            regions=deployment_regions,
            cache_capacity_bytes=cache_capacity_bytes,
            agar=agar_config,
            topology_seed=topology_seed,
            arrival=arrival or ArrivalSpec(),
            collaboration=collaboration and all_agar,
        )
        comparison[strategy] = run_engine_many(config, runs=runs, topology=topology)
    return comparison


# ---------------------------------------------------------------------- #
# The multi-region scaling experiment
# ---------------------------------------------------------------------- #
#: Client counts swept by the scaling experiment.
DEFAULT_CLIENT_SCALING: tuple[int, ...] = (1, 2, 4, 8)

#: Default per-client Poisson arrival rate (requests/second).
DEFAULT_ARRIVAL_RATE_RPS = 2.0


@dataclass(frozen=True)
class MultiRegionRow:
    """One row of the scaling experiment's report.

    The ``all`` region rows are the deployment-wide aggregate: percentiles of
    the merged per-read distribution, combined hit ratio, total throughput.
    """

    clients_per_region: int
    region: str
    strategy: str
    mean_latency_ms: float
    p50_latency_ms: float
    p95_latency_ms: float
    p99_latency_ms: float
    hit_ratio: float
    throughput_rps: float
    #: Mean chunks per run read from neighbouring caches (§VI traffic).
    neighbor_chunks: float


def _row_from_aggregate(clients: int, aggregate: RegionAggregate) -> MultiRegionRow:
    return MultiRegionRow(
        clients_per_region=clients,
        region=aggregate.region,
        strategy=aggregate.strategy,
        mean_latency_ms=aggregate.mean_latency_ms,
        p50_latency_ms=aggregate.p50_latency_ms,
        p95_latency_ms=aggregate.p95_latency_ms,
        p99_latency_ms=aggregate.p99_latency_ms,
        hit_ratio=aggregate.hit_ratio,
        throughput_rps=aggregate.throughput_rps,
        neighbor_chunks=aggregate.neighbor_chunks,
    )


def run_multiregion_scaling(settings: ExperimentSettings | None = None,
                            options: EngineOptions | None = None,
                            strategy: str = "agar",
                            client_scaling: tuple[int, ...] | None = None
                            ) -> list[MultiRegionRow]:
    """Sweep concurrent clients per region on a fixed multi-region deployment.

    Defaults follow the acceptance scenario: two regions (Frankfurt, Sydney),
    Poisson arrivals, collaboration on.  The sweep covers ``client_scaling``
    (default 1/2/4/8, extended by the requested ``clients_per_region`` if it
    is not already included).  Heterogeneous deployments (per-region strategy
    and cache size) come from ``options.region_specs``; each sweep point
    reports its regions plus the deployment-wide aggregate row (``all``).
    """
    settings = settings or ExperimentSettings.quick()
    options = options or EngineOptions(
        regions=EVALUATION_REGIONS,
        clients_per_region=4,
        arrival_rate_rps=DEFAULT_ARRIVAL_RATE_RPS,
        collaboration=True,
    )
    regions = options.effective_regions(EVALUATION_REGIONS)
    arrival = options.arrival_spec()
    if client_scaling is None:
        client_scaling = tuple(sorted(set(DEFAULT_CLIENT_SCALING)
                                      | {options.clients_per_region}))
    capacity = settings.cache_capacity_bytes
    workload = settings.workload(skew=1.1)

    rows: list[MultiRegionRow] = []
    for clients in client_scaling:
        deployment_regions = options.build_region_specs(
            EVALUATION_REGIONS, strategy, clients=clients
        )
        all_agar = all(spec.strategy == "agar" for spec in deployment_regions)
        config = EngineConfig(
            workload=workload,
            regions=deployment_regions,
            cache_capacity_bytes=capacity,
            agar=agar_config_for_capacity(capacity),
            topology_seed=settings.seed,
            arrival=arrival,
            collaboration=options.collaboration and all_agar,
        )
        aggregates = run_engine_many(config, runs=settings.runs)
        for region in regions:
            rows.append(_row_from_aggregate(clients, aggregates[region]))
        rows.append(_row_from_aggregate(clients, aggregates.deployment))
    return rows


def render_multiregion(rows: list[MultiRegionRow],
                       options: EngineOptions | None = None) -> Table:
    """Render the scaling experiment as a report table.

    Each client count lists its regions followed by the deployment-wide
    ``all`` aggregate row (merged percentiles, total throughput).
    """
    title = "Multi-region scaling — latency, hit ratio and throughput"
    if options is not None:
        loop = ("poisson @ %.2g rps" % options.arrival_rate_rps
                if options.arrival_rate_rps else "closed loop")
        collab = "collaboration on" if options.collaboration else "collaboration off"
        title += f" ({loop}, {collab})"
    table = Table(
        title=title,
        columns=("clients/region", "region", "strategy", "mean (ms)", "p50 (ms)",
                 "p95 (ms)", "p99 (ms)", "hit ratio (%)", "throughput (req/s)",
                 "neighbor chunks"),
    )
    for row in rows:
        table.add_row(
            row.clients_per_region,
            row.region,
            row.strategy,
            row.mean_latency_ms,
            row.p50_latency_ms,
            row.p95_latency_ms,
            row.p99_latency_ms,
            row.hit_ratio * 100.0,
            row.throughput_rps,
            row.neighbor_chunks,
        )
    return table
