"""Figure 10 — what Agar chooses to keep in its cache.

The paper takes snapshots of Agar's cache for clients in Frankfurt and Sydney
with 5 MB and 10 MB caches and shows how the cached space is split between
objects with 9, 7, 5, ... 1 cached chunks.  This experiment runs Agar under the
default workload and reports the same distribution, both as an object count
histogram and as the share of cache space per chunk-count bucket.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import Table
from repro.experiments.common import MEGABYTE, ExperimentSettings, agar_config_for_capacity
from repro.sim.simulation import Simulation, SimulationConfig

#: The four scenarios of Fig. 10.
FIG10_SCENARIOS: tuple[tuple[str, int], ...] = (
    ("frankfurt", 10 * MEGABYTE),
    ("frankfurt", 5 * MEGABYTE),
    ("sydney", 10 * MEGABYTE),
    ("sydney", 5 * MEGABYTE),
)


@dataclass(frozen=True)
class Fig10Snapshot:
    """Cache-content distribution for one (region, cache size) scenario."""

    region: str
    cache_capacity_bytes: int
    chunk_histogram: dict[int, int] = field(default_factory=dict)
    space_share: dict[int, float] = field(default_factory=dict)
    cached_objects: int = 0
    cached_chunks: int = 0

    @property
    def cache_capacity_mb(self) -> float:
        """Capacity in megabytes."""
        return self.cache_capacity_bytes / MEGABYTE


def run_fig10(settings: ExperimentSettings | None = None,
              scenarios: tuple[tuple[str, int], ...] = FIG10_SCENARIOS) -> list[Fig10Snapshot]:
    """Run Agar in each scenario and snapshot its cache contents."""
    settings = settings or ExperimentSettings.quick()
    workload = settings.workload(skew=1.1)
    snapshots = []
    for region, capacity in scenarios:
        config = SimulationConfig(
            workload=workload,
            client_region=region,
            strategy="agar",
            cache_capacity_bytes=capacity,
            agar=agar_config_for_capacity(capacity),
            topology_seed=settings.seed,
        )
        aggregate = Simulation(config).run_many(runs=settings.runs)
        snapshot = aggregate.last_cache_snapshot
        histogram = snapshot.chunk_count_histogram() if snapshot else {}
        total_chunks = sum(count * objects for count, objects in histogram.items())
        share = {
            count: (count * objects / total_chunks if total_chunks else 0.0)
            for count, objects in histogram.items()
        }
        snapshots.append(
            Fig10Snapshot(
                region=region,
                cache_capacity_bytes=capacity,
                chunk_histogram=dict(sorted(histogram.items(), reverse=True)),
                space_share=dict(sorted(share.items(), reverse=True)),
                cached_objects=sum(histogram.values()),
                cached_chunks=total_chunks,
            )
        )
    return snapshots


def render_fig10(snapshots: list[Fig10Snapshot]) -> Table:
    """Render the space share per chunk-count bucket for every scenario."""
    buckets = sorted({count for snap in snapshots for count in snap.space_share}, reverse=True)
    table = Table(
        title="Figure 10 — share of Agar's cache occupied per cached-chunk count (%)",
        columns=("scenario", *[f"{bucket} blocks" for bucket in buckets]),
    )
    for snap in snapshots:
        label = f"{snap.region} {snap.cache_capacity_mb:.0f}MB"
        table.add_row(label, *[snap.space_share.get(bucket, 0.0) * 100.0 for bucket in buckets])
    return table


def diversity_check(snapshot: Fig10Snapshot) -> dict[str, float]:
    """Quantify the paper's observations about Agar's cache contents.

    Returns the number of distinct chunk-count buckets in use and the largest
    single bucket's share of the cache (the paper notes Agar "diversifies the
    contents of the cache, rather than having the majority of the cache filled
    by a certain object size").
    """
    shares = list(snapshot.space_share.values())
    return {
        "distinct_buckets": float(len(shares)),
        "largest_bucket_share": max(shares) if shares else 0.0,
        "full_replica_share": snapshot.space_share.get(9, 0.0),
    }
