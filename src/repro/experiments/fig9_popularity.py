"""Figure 9 — cumulative distribution of object popularity per Zipf skew.

The figure shows, for skews {0.5, 0.8, 1.1, 1.4}, the cumulative percentage of
requests that target the ``x`` most popular objects (x up to 50).  It is a
property of the workload generator alone, so this experiment needs no
simulation: it evaluates the analytic CDF and, optionally, an empirical CDF
from sampled requests to validate the generator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.cdf import CdfSeries, popularity_cdf
from repro.analysis.report import Table
from repro.experiments.common import FIG9_SKEWS, ExperimentSettings
from repro.workload.workload import zipfian_workload, generate_requests, request_frequency
from repro.workload.zipfian import ZipfianDistribution


@dataclass(frozen=True)
class Fig9Series:
    """The CDF of one skew value."""

    skew: float
    analytic: CdfSeries
    empirical: CdfSeries | None = None


def run_fig9(settings: ExperimentSettings | None = None,
             skews: tuple[float, ...] = FIG9_SKEWS,
             max_objects: int = 50,
             include_empirical: bool = True) -> list[Fig9Series]:
    """Compute the popularity CDFs of Fig. 9.

    Args:
        settings: experiment scale (object count, request count, seed).
        skews: Zipf exponents to plot.
        max_objects: x-axis limit (the paper plots the 50 most popular objects).
        include_empirical: also sample a request stream per skew and compute the
            empirical CDF, validating the generator against the analytic curve.
    """
    settings = settings or ExperimentSettings.quick()
    series = []
    for skew in skews:
        distribution = ZipfianDistribution(settings.object_count, skew=skew, seed=settings.seed)
        analytic = popularity_cdf(distribution.probabilities(), label=f"zipf-{skew:g}")

        empirical = None
        if include_empirical:
            workload = zipfian_workload(
                skew, request_count=settings.request_count,
                object_count=settings.object_count, seed=settings.seed,
            )
            requests = generate_requests(workload)
            counts = request_frequency(requests)
            per_rank = np.zeros(settings.object_count)
            for rank in range(settings.object_count):
                per_rank[rank] = counts.get(workload.key_for_rank(rank), 0)
            # Empirical popularity is sorted by observed frequency, mirroring
            # how one would read it off a trace without knowing true ranks.
            ordered = np.sort(per_rank)[::-1]
            empirical = popularity_cdf(ordered, label=f"zipf-{skew:g}-empirical")

        series.append(Fig9Series(skew=skew, analytic=analytic, empirical=empirical))
    return series


def render_fig9(series: list[Fig9Series], x_points: tuple[int, ...] = (5, 10, 20, 30, 50)) -> Table:
    """Tabulate the CDFs at a few object counts (the paper's example: x=5 → 40 %)."""
    table = Table(
        title="Figure 9 — cumulative request share of the x most popular objects (%)",
        columns=("objects", *[f"zipf-{one.skew:g}" for one in series]),
    )
    for x_value in x_points:
        table.add_row(x_value, *[one.analytic.value_at(x_value) * 100.0 for one in series])
    return table
