"""Figures 6 and 7 — Agar vs. LRU-c, LFU-c and the backend.

One experiment produces both figures: Fig. 6 plots the average read latency of
every strategy in Frankfurt and Sydney with a 10 MB cache and the Zipf-1.1
workload; Fig. 7 plots the corresponding hit ratios (full + partial hits).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import Table, improvement_summary
from repro.experiments.common import (
    EVALUATION_REGIONS,
    FIG6_STRATEGIES,
    EngineOptions,
    ExperimentSettings,
    agar_config_for_capacity,
)
from repro.experiments.multiregion import run_engine_comparison
from repro.sim.simulation import AggregatedResult, run_comparison


@dataclass(frozen=True)
class PolicyComparisonRow:
    """One bar of Fig. 6 / Fig. 7."""

    region: str
    strategy: str
    mean_latency_ms: float
    hit_ratio: float
    full_hit_ratio: float


def run_policy_comparison(settings: ExperimentSettings | None = None,
                          regions: tuple[str, ...] = EVALUATION_REGIONS,
                          strategies: tuple[str, ...] = FIG6_STRATEGIES,
                          cache_capacity_bytes: int | None = None,
                          engine: EngineOptions | None = None) -> list[PolicyComparisonRow]:
    """Run the Fig. 6 / Fig. 7 comparison and return one row per (region, strategy).

    With active ``engine`` options the comparison runs on the discrete-event
    engine instead: all regions simulate simultaneously in one deployment per
    strategy, with the requested client count, arrival process and (for Agar)
    cache collaboration.
    """
    settings = settings or ExperimentSettings.quick()
    capacity = cache_capacity_bytes or settings.cache_capacity_bytes
    workload = settings.workload(skew=1.1)
    rows: list[PolicyComparisonRow] = []

    if engine is not None and engine.active:
        deployment_regions = engine.effective_regions(regions)
        comparison_by_strategy = run_engine_comparison(
            workload=workload,
            strategies=list(strategies),
            regions=deployment_regions,
            cache_capacity_bytes=capacity,
            runs=settings.runs,
            clients_per_region=engine.clients_per_region,
            arrival=engine.arrival_spec(),
            collaboration=engine.collaboration,
            agar_config=agar_config_for_capacity(capacity),
            topology_seed=settings.seed,
        )
        for strategy in strategies:
            for region in deployment_regions:
                aggregate = comparison_by_strategy[strategy][region]
                rows.append(
                    PolicyComparisonRow(
                        region=region,
                        strategy=strategy,
                        mean_latency_ms=aggregate.mean_latency_ms,
                        hit_ratio=aggregate.hit_ratio,
                        full_hit_ratio=aggregate.full_hit_ratio,
                    )
                )
        return rows

    for region in regions:
        comparison: dict[str, AggregatedResult] = run_comparison(
            workload=workload,
            strategies=list(strategies),
            client_region=region,
            cache_capacity_bytes=capacity,
            runs=settings.runs,
            agar_config=agar_config_for_capacity(capacity),
            topology_seed=settings.seed,
        )
        for strategy, aggregate in comparison.items():
            rows.append(
                PolicyComparisonRow(
                    region=region,
                    strategy=strategy,
                    mean_latency_ms=aggregate.mean_latency_ms,
                    hit_ratio=aggregate.hit_ratio,
                    full_hit_ratio=aggregate.full_hit_ratio,
                )
            )
    return rows


def render_fig6(rows: list[PolicyComparisonRow]) -> Table:
    """Fig. 6: average read latency per strategy and region."""
    regions = sorted({row.region for row in rows})
    strategies = [row.strategy for row in rows if row.region == regions[0]]
    lookup = {(row.region, row.strategy): row.mean_latency_ms for row in rows}
    table = Table(
        title="Figure 6 — average read latency (ms): Agar vs LRU/LFU vs Backend",
        columns=("strategy", *regions),
    )
    for strategy in strategies:
        table.add_row(strategy, *[lookup[(region, strategy)] for region in regions])
    return table


def render_fig7(rows: list[PolicyComparisonRow]) -> Table:
    """Fig. 7: hit ratio (full + partial) per caching strategy and region."""
    regions = sorted({row.region for row in rows})
    strategies = [row.strategy for row in rows if row.region == regions[0] and row.strategy != "backend"]
    lookup = {(row.region, row.strategy): row.hit_ratio for row in rows}
    table = Table(
        title="Figure 7 — cache hit ratio (full + partial hits)",
        columns=("strategy", *[f"{region} (%)" for region in regions]),
    )
    for strategy in strategies:
        table.add_row(strategy, *[lookup[(region, strategy)] * 100.0 for region in regions])
    return table


def agar_advantage(rows: list[PolicyComparisonRow], region: str) -> dict[str, float]:
    """The paper's headline numbers for one region.

    Returns how much lower Agar's latency is than the best and the worst
    static caching policy (LRU-c / LFU-c), excluding the backend.
    """
    latencies = {row.strategy: row.mean_latency_ms for row in rows if row.region == region}
    return improvement_summary(latencies, subject="agar", exclude=("backend",))
