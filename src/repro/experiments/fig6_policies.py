"""Figures 6 and 7 — Agar vs. LRU-c, LFU-c and the backend.

One experiment produces both figures: Fig. 6 plots the average read latency of
every strategy in Frankfurt and Sydney with a 10 MB cache and the Zipf-1.1
workload; Fig. 7 plots the corresponding hit ratios (full + partial hits).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import Table, improvement_summary
from repro.experiments.common import (
    EVALUATION_REGIONS,
    FIG6_STRATEGIES,
    EngineOptions,
    ExperimentSettings,
    agar_config_for_capacity,
)
from repro.experiments.multiregion import run_engine_comparison
from repro.sim.simulation import AggregatedResult, run_comparison


@dataclass(frozen=True)
class PolicyComparisonRow:
    """One bar of Fig. 6 / Fig. 7."""

    region: str
    strategy: str
    mean_latency_ms: float
    hit_ratio: float
    full_hit_ratio: float


def run_policy_comparison(settings: ExperimentSettings | None = None,
                          regions: tuple[str, ...] = EVALUATION_REGIONS,
                          strategies: tuple[str, ...] = FIG6_STRATEGIES,
                          cache_capacity_bytes: int | None = None,
                          engine: EngineOptions | None = None) -> list[PolicyComparisonRow]:
    """Run the Fig. 6 / Fig. 7 comparison and return one row per (region, strategy).

    With active ``engine`` options the comparison runs on the discrete-event
    engine instead: all regions simulate simultaneously in one deployment per
    strategy, with the requested client count, arrival process and (for Agar)
    cache collaboration.
    """
    settings = settings or ExperimentSettings.quick()
    capacity = cache_capacity_bytes or settings.cache_capacity_bytes
    workload = settings.workload(skew=1.1)
    rows: list[PolicyComparisonRow] = []

    if engine is not None and engine.active:
        deployment_regions = engine.effective_regions(regions)
        sweep_strategies = list(strategies)
        pinned = {spec.region for spec in engine.region_specs or ()
                  if spec.strategy is not None}
        if pinned and len(pinned) == len(deployment_regions):
            # Every region pins its strategy (--region NAME:STRATEGY...): the
            # sweep would rerun the identical heterogeneous deployment per
            # strategy, so one run suffices.
            sweep_strategies = sweep_strategies[:1]
        elif pinned and engine.collaboration:
            # Collaboration only activates in the all-agar sweep deployment,
            # so a pinned region's rows would average collaborative and
            # non-collaborative systems — refuse rather than report a number
            # that matches neither.
            raise ValueError(
                "collaboration with partially pinned --region strategies is "
                "ambiguous for fig6/fig7; pin every region or drop "
                "--collaboration"
            )
        comparison_by_strategy = run_engine_comparison(
            workload=workload,
            strategies=sweep_strategies,
            regions=deployment_regions,
            cache_capacity_bytes=capacity,
            runs=settings.runs,
            clients_per_region=engine.clients_per_region,
            arrival=engine.arrival_spec(),
            collaboration=engine.collaboration,
            agar_config=agar_config_for_capacity(capacity),
            topology_seed=settings.seed,
            region_specs=engine.region_specs,
        )
        # Rows carry the strategy that actually ran in each region — for a
        # pinned region that is its pinned strategy, not the sweep label.  A
        # pinned region repeats its (same-strategy) run once per sweep
        # deployment with slightly different jitter interleavings, so its
        # row averages over all of them, like extra repetitions.
        collected: dict[tuple[str, str], list] = {}
        order: list[tuple[str, str]] = []
        for strategy in sweep_strategies:
            for region in deployment_regions:
                aggregate = comparison_by_strategy[strategy][region]
                key = (region, aggregate.strategy)
                if key not in collected:
                    collected[key] = []
                    order.append(key)
                collected[key].append(aggregate)
        for region, label in order:
            aggregates = collected[(region, label)]
            count = len(aggregates)
            rows.append(
                PolicyComparisonRow(
                    region=region,
                    strategy=label,
                    mean_latency_ms=sum(a.mean_latency_ms for a in aggregates) / count,
                    hit_ratio=sum(a.hit_ratio for a in aggregates) / count,
                    full_hit_ratio=sum(a.full_hit_ratio for a in aggregates) / count,
                )
            )
        return rows

    for region in regions:
        comparison: dict[str, AggregatedResult] = run_comparison(
            workload=workload,
            strategies=list(strategies),
            client_region=region,
            cache_capacity_bytes=capacity,
            runs=settings.runs,
            agar_config=agar_config_for_capacity(capacity),
            topology_seed=settings.seed,
        )
        for strategy, aggregate in comparison.items():
            rows.append(
                PolicyComparisonRow(
                    region=region,
                    strategy=strategy,
                    mean_latency_ms=aggregate.mean_latency_ms,
                    hit_ratio=aggregate.hit_ratio,
                    full_hit_ratio=aggregate.full_hit_ratio,
                )
            )
    return rows


def _row_strategies(rows: list[PolicyComparisonRow]) -> list[str]:
    """Distinct strategies in first-appearance order (regions may differ
    when ``--region`` pins per-region strategies)."""
    ordered: list[str] = []
    for row in rows:
        if row.strategy not in ordered:
            ordered.append(row.strategy)
    return ordered


def render_fig6(rows: list[PolicyComparisonRow]) -> Table:
    """Fig. 6: average read latency per strategy and region.

    A region pinned to one strategy (heterogeneous ``--region`` deployments)
    only has values for that strategy; other cells render as ``-``.
    """
    regions = sorted({row.region for row in rows})
    lookup = {(row.region, row.strategy): row.mean_latency_ms for row in rows}
    table = Table(
        title="Figure 6 — average read latency (ms): Agar vs LRU/LFU vs Backend",
        columns=("strategy", *regions),
    )
    for strategy in _row_strategies(rows):
        table.add_row(strategy, *[lookup.get((region, strategy), "-")
                                  for region in regions])
    return table


def render_fig7(rows: list[PolicyComparisonRow]) -> Table:
    """Fig. 7: hit ratio (full + partial) per caching strategy and region."""
    regions = sorted({row.region for row in rows})
    lookup = {(row.region, row.strategy): row.hit_ratio for row in rows}
    table = Table(
        title="Figure 7 — cache hit ratio (full + partial hits)",
        columns=("strategy", *[f"{region} (%)" for region in regions]),
    )
    for strategy in _row_strategies(rows):
        if strategy == "backend":
            continue
        table.add_row(strategy, *[
            lookup[(region, strategy)] * 100.0 if (region, strategy) in lookup else "-"
            for region in regions
        ])
    return table


def agar_advantage(rows: list[PolicyComparisonRow], region: str) -> dict[str, float]:
    """The paper's headline numbers for one region.

    Returns how much lower Agar's latency is than the best and the worst
    static caching policy (LRU-c / LFU-c), excluding the backend.  Empty when
    the region has no Agar run or nothing to compare against (e.g. a region
    pinned to a single strategy in a heterogeneous deployment).
    """
    latencies = {row.strategy: row.mean_latency_ms for row in rows if row.region == region}
    comparable = {name for name in latencies if name not in ("agar", "backend")}
    if "agar" not in latencies or not comparable:
        return {}
    return improvement_summary(latencies, subject="agar", exclude=("backend",))
