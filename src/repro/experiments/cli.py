"""Command-line entry point: regenerate any of the paper's tables and figures.

Installed as ``agar-experiments``.  Examples::

    agar-experiments table1
    agar-experiments fig6 --quick
    agar-experiments all --quick

Each command prints the rows/series of the corresponding figure as a text
table; ``--quick`` runs the reduced-scale settings used by the benchmark suite,
the default is the paper's full scale (5 runs × 1,000 reads).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.common import ExperimentSettings
from repro.experiments.fig2_motivating import render_fig2, run_fig2
from repro.experiments.fig6_policies import agar_advantage, render_fig6, render_fig7, run_policy_comparison
from repro.experiments.fig8_sweeps import agar_lead_by_group, render_sweep, run_fig8a, run_fig8b
from repro.experiments.fig9_popularity import render_fig9, run_fig9
from repro.experiments.fig10_cache_contents import render_fig10, run_fig10
from repro.experiments.microbench import run_capacity_scaling, run_microbench
from repro.experiments.table1_latency import render_table1, run_table1

EXPERIMENTS = ("table1", "fig2", "fig6", "fig7", "fig8a", "fig8b", "fig9", "fig10", "microbench")


def _settings(args: argparse.Namespace) -> ExperimentSettings:
    return ExperimentSettings.quick() if args.quick else ExperimentSettings.paper()


def _run_one(name: str, settings: ExperimentSettings, out) -> None:
    if name == "table1":
        print(render_table1(run_table1()).render(), file=out)
    elif name == "fig2":
        print(render_fig2(run_fig2(settings)).render(), file=out)
    elif name in ("fig6", "fig7"):
        rows = run_policy_comparison(settings)
        if name == "fig6":
            print(render_fig6(rows).render(), file=out)
            for region in sorted({row.region for row in rows}):
                summary = agar_advantage(rows, region)
                print(
                    f"{region}: Agar {summary['vs_best_pct']:.1f}% lower latency than the best "
                    f"static policy ({summary['best_other']}), {summary['vs_worst_pct']:.1f}% lower "
                    f"than the worst ({summary['worst_other']})",
                    file=out,
                )
        else:
            print(render_fig7(rows).render(), file=out)
    elif name == "fig8a":
        points = run_fig8a(settings)
        print(render_sweep(points, "Figure 8a — average latency (ms) vs cache size").render(), file=out)
        for group, lead in sorted(agar_lead_by_group(points).items()):
            print(f"{group}: Agar {lead:+.1f}% vs best static policy", file=out)
    elif name == "fig8b":
        points = run_fig8b(settings)
        print(render_sweep(points, "Figure 8b — average latency (ms) vs workload").render(), file=out)
        for group, lead in sorted(agar_lead_by_group(points).items()):
            print(f"{group}: Agar {lead:+.1f}% vs best static policy", file=out)
    elif name == "fig9":
        print(render_fig9(run_fig9(settings)).render(), file=out)
    elif name == "fig10":
        print(render_fig10(run_fig10(settings)).render(), file=out)
    elif name == "microbench":
        result = run_microbench(settings)
        print(
            f"request processing: {result.request_processing_ms:.3f} ms/request "
            f"(paper: ~0.5 ms)\n"
            f"reconfiguration:    {result.reconfiguration_ms:.1f} ms for a "
            f"{result.cache_capacity_mb:.0f} MB cache, {result.candidate_keys} candidate objects "
            f"(paper: ~5 ms)",
            file=out,
        )
        for row in run_capacity_scaling(settings):
            print(f"  cache {row.cache_capacity_mb:5.0f} MB -> reconfiguration {row.reconfiguration_ms:8.1f} ms", file=out)
    else:
        raise ValueError(f"unknown experiment {name!r}")


def main(argv: list[str] | None = None, out=sys.stdout) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="agar-experiments",
        description="Regenerate the tables and figures of the Agar paper (ICDCS 2017).",
    )
    parser.add_argument("experiment", choices=(*EXPERIMENTS, "all"),
                        help="which table/figure to regenerate")
    parser.add_argument("--quick", action="store_true",
                        help="reduced scale (2 runs x 400 reads) instead of the paper's 5 x 1000")
    args = parser.parse_args(argv)
    settings = _settings(args)

    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        print(f"=== {name} ===", file=out)
        _run_one(name, settings, out)
        print(file=out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
