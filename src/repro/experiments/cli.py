"""Command-line entry point: regenerate any of the paper's tables and figures.

Installed as ``agar-experiments``.  Examples::

    agar-experiments table1
    agar-experiments fig6 --quick
    agar-experiments fig6 --quick --regions frankfurt,sydney --clients-per-region 4
    agar-experiments multiregion --quick --arrival-rate 2 --collaboration
    agar-experiments multiregion --quick --region frankfurt:agar:256MB --region sydney:lfu-5:64MB
    agar-experiments fig_collab --quick
    agar-experiments fig_collab --quick --sharded --neighbor-read-ms 20,120,400
    agar-experiments all --quick

Each command prints the rows/series of the corresponding figure as a text
table; ``--quick`` runs the reduced-scale settings used by the benchmark suite,
the default is the paper's full scale (5 runs × 1,000 reads).

The engine flags (``--regions``, ``--region``, ``--clients-per-region``,
``--arrival-rate``, ``--collaboration``) route the Fig. 6/7/8 runners and the
``multiregion`` experiment through the multi-region discrete-event engine
instead of the classic single-client loop.  Heterogeneous deployments use the
repeatable ``--region NAME[:STRATEGY[:CACHE]]`` form: each region can pin its
own read strategy and cache size (e.g. ``--region eu:agar:256MB --region
ap:lfu-5:64MB``); either override may be omitted (``sydney::64MB``).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.common import (
    EVALUATION_REGIONS,
    EngineOptions,
    ExperimentSettings,
    RegionSpecOption,
)
from repro.experiments.fig2_motivating import render_fig2, run_fig2
from repro.experiments.fig6_policies import agar_advantage, render_fig6, render_fig7, run_policy_comparison
from repro.experiments.fig8_sweeps import agar_lead_by_group, render_sweep, run_fig8a, run_fig8b
from repro.experiments.fig9_popularity import render_fig9, run_fig9
from repro.experiments.fig10_cache_contents import render_fig10, run_fig10
from repro.experiments.fig_chaos import (
    FigChaosOptions,
    render_fig_chaos,
    run_fig_chaos,
)
from repro.experiments.fig_collab import render_fig_collab, run_fig_collab
from repro.experiments.fig_failures import render_fig_failures, run_fig_failures
from repro.experiments.microbench import run_capacity_scaling, run_microbench
from repro.experiments.multiregion import (
    DEFAULT_ARRIVAL_RATE_RPS,
    render_multiregion,
    run_multiregion_scaling,
)
from repro.experiments.serve_wire import (
    ServeWireOptions,
    render_serve_wire,
    run_serve_wire,
)
from repro.experiments.table1_latency import render_table1, run_table1

EXPERIMENTS = ("table1", "fig2", "fig6", "fig7", "fig8a", "fig8b", "fig9", "fig10",
               "fig_collab", "fig_failures", "fig_chaos", "microbench",
               "multiregion", "serve")

#: Experiments that understand the engine flags.
ENGINE_EXPERIMENTS = ("fig6", "fig7", "fig8a", "fig8b", "fig_collab", "fig_failures",
                      "multiregion")


def _settings(args: argparse.Namespace) -> ExperimentSettings:
    if args.smoke:
        return ExperimentSettings.smoke()
    return ExperimentSettings.quick() if args.quick else ExperimentSettings.paper()


def _parse_float_list(text: str, flag: str) -> tuple[float, ...]:
    """Parse a comma-separated list of positive floats for a sweep flag."""
    values = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            value = float(part)
        except ValueError:
            raise ValueError(f"malformed {flag} value {part!r}") from None
        if value <= 0:
            raise ValueError(f"{flag} values must be positive, got {part!r}")
        values.append(value)
    if not values:
        raise ValueError(f"{flag} needs at least one value")
    return tuple(values)


def _engine_options(args: argparse.Namespace, for_multiregion: bool,
                    region_specs: tuple[RegionSpecOption, ...] | None
                    ) -> EngineOptions | None:
    """Build engine options from the CLI flags.

    ``multiregion`` always runs on the engine, so missing flags fall back to
    the acceptance scenario's defaults (two regions, 4 clients each, Poisson
    arrivals, collaboration on); the figure runners only leave the classic
    path when a flag is given explicitly.  ``region_specs`` are the already
    parsed/validated ``--region`` values.
    """
    regions = None
    if args.regions:
        regions = tuple(name.strip() for name in args.regions.split(",") if name.strip())
    if for_multiregion:
        return EngineOptions(
            regions=None if region_specs else (regions or EVALUATION_REGIONS),
            clients_per_region=args.clients_per_region or 4,
            arrival_rate_rps=args.arrival_rate or DEFAULT_ARRIVAL_RATE_RPS,
            collaboration=True if args.collaboration is None else args.collaboration,
            region_specs=region_specs,
        )
    options = EngineOptions(
        regions=regions,
        clients_per_region=args.clients_per_region or 1,
        arrival_rate_rps=args.arrival_rate,
        collaboration=bool(args.collaboration),
        region_specs=region_specs,
    )
    return options if options.active else None


def _run_one(name: str, settings: ExperimentSettings, out,
             engine: EngineOptions | None = None,
             extra: dict | None = None) -> None:
    extra = extra or {}
    if name == "table1":
        print(render_table1(run_table1()).render(), file=out)
    elif name == "fig2":
        print(render_fig2(run_fig2(settings)).render(), file=out)
    elif name in ("fig6", "fig7"):
        rows = run_policy_comparison(settings, engine=engine)
        if name == "fig6":
            print(render_fig6(rows).render(), file=out)
            for region in sorted({row.region for row in rows}):
                summary = agar_advantage(rows, region)
                if not summary:
                    continue
                print(
                    f"{region}: Agar {summary['vs_best_pct']:.1f}% lower latency than the best "
                    f"static policy ({summary['best_other']}), {summary['vs_worst_pct']:.1f}% lower "
                    f"than the worst ({summary['worst_other']})",
                    file=out,
                )
        else:
            print(render_fig7(rows).render(), file=out)
    elif name == "fig8a":
        points = run_fig8a(settings, engine=engine)
        print(render_sweep(points, "Figure 8a — average latency (ms) vs cache size").render(), file=out)
        for group, lead in sorted(agar_lead_by_group(points).items()):
            print(f"{group}: Agar {lead:+.1f}% vs best static policy", file=out)
    elif name == "fig8b":
        points = run_fig8b(settings, engine=engine)
        print(render_sweep(points, "Figure 8b — average latency (ms) vs workload").render(), file=out)
        for group, lead in sorted(agar_lead_by_group(points).items()):
            print(f"{group}: Agar {lead:+.1f}% vs best static policy", file=out)
    elif name == "fig9":
        print(render_fig9(run_fig9(settings)).render(), file=out)
    elif name == "fig10":
        print(render_fig10(run_fig10(settings)).render(), file=out)
    elif name == "fig_collab":
        result = run_fig_collab(
            settings,
            options=engine,
            neighbor_read_ms_values=extra.get("neighbor_read_ms"),
            periods=extra.get("collab_periods"),
            sharded=bool(extra.get("sharded")),
        )
        print(render_fig_collab(result), file=out)
    elif name == "fig_failures":
        result = run_fig_failures(
            settings,
            options=engine,
            outage_fractions=extra.get("outage_fractions"),
            fault_region=extra.get("fault_region") or "sao_paulo",
            sharded=bool(extra.get("sharded")),
        )
        print(render_fig_failures(result), file=out)
    elif name == "multiregion":
        rows = run_multiregion_scaling(settings, options=engine)
        print(render_multiregion(rows, options=engine).render(), file=out)
    elif name == "fig_chaos":
        chaos_options = FigChaosOptions()
        if extra.get("chaos_regions"):
            chaos_options = FigChaosOptions(regions=extra["chaos_regions"])
        chaos_results = run_fig_chaos(settings, chaos_options)
        print(render_fig_chaos(chaos_results).render(), file=out)
        for variant in chaos_results:
            if not variant.recoveries:
                continue
            print(f"{variant.name}: {len(variant.recoveries)} recoveries, "
                  f"mean {variant.mean_recovery_ms:.1f} ms, "
                  f"{variant.mean_restored_fraction * 100.0:.0f}% of "
                  f"pre-crash cache restored", file=out)
    elif name == "serve":
        serve_options = ServeWireOptions(
            regions=tuple(extra.get("serve_regions") or ("frankfurt",)),
            rate_rps=extra.get("serve_rate_rps"),
        )
        results = run_serve_wire(settings, serve_options)
        print(render_serve_wire(results).render(), file=out)
        for region, result in results.items():
            print(f"{region}: {result.throughput_rps:.0f} req/s measured over "
                  f"{result.requests} wire requests ({result.errors} errors)",
                  file=out)
    elif name == "microbench":
        result = run_microbench(settings)
        print(
            f"request processing: {result.request_processing_ms:.3f} ms/request "
            f"(paper: ~0.5 ms)\n"
            f"reconfiguration:    {result.reconfiguration_ms:.1f} ms for a "
            f"{result.cache_capacity_mb:.0f} MB cache, {result.candidate_keys} candidate objects "
            f"(paper: ~5 ms)",
            file=out,
        )
        for row in run_capacity_scaling(settings):
            print(f"  cache {row.cache_capacity_mb:5.0f} MB -> reconfiguration {row.reconfiguration_ms:8.1f} ms", file=out)
    else:
        raise ValueError(f"unknown experiment {name!r}")


def main(argv: list[str] | None = None, out=sys.stdout) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="agar-experiments",
        description="Regenerate the tables and figures of the Agar paper (ICDCS 2017).",
    )
    parser.add_argument("experiment", choices=(*EXPERIMENTS, "all"),
                        help="which table/figure to regenerate")
    parser.add_argument("--quick", action="store_true",
                        help="reduced scale (2 runs x 400 reads) instead of the paper's 5 x 1000")
    parser.add_argument("--smoke", action="store_true",
                        help="minimal scale (1 run x 120 reads): asserts the "
                             "command executes; numbers are not meaningful "
                             "(used by the CI docs job)")
    parser.add_argument("--neighbor-read-ms", default=None, metavar="MS1,MS2,...",
                        help="neighbour-cache read latencies swept by fig_collab "
                             "(comma separated; default 10,50,120,250,500)")
    parser.add_argument("--collab-period", default=None, metavar="S1,S2,...",
                        help="collaboration periods in seconds swept by "
                             "fig_collab (comma separated; default 30)")
    parser.add_argument("--sharded", action="store_true",
                        help="run fig_collab/fig_failures through the "
                             "process-parallel sharded engine (one worker per "
                             "region, §VI message-passing rounds)")
    parser.add_argument("--outage-fraction", default=None, metavar="F1,F2,...",
                        help="outage durations swept by fig_failures, as "
                             "fractions of the clean-run duration (comma "
                             "separated, each in (0, 1); default 0.15,0.3)")
    parser.add_argument("--fault-region", default=None, metavar="REGION",
                        help="backend region fig_failures takes down "
                             "(default sao_paulo; must not be a client region)")
    parser.add_argument("--regions", default=None, metavar="R1,R2,...",
                        help="client regions of the simulated deployment "
                             "(comma separated; engine experiments only)")
    parser.add_argument("--region", action="append", default=None,
                        metavar="NAME[:STRATEGY[:CACHE]]",
                        help="one region of a heterogeneous deployment, with "
                             "optional pinned strategy and per-region cache size "
                             "(e.g. frankfurt:agar:256MB); repeatable, engine "
                             "experiments only, mutually exclusive with --regions")
    parser.add_argument("--clients-per-region", type=int, default=None, metavar="N",
                        help="concurrent clients per region (engine experiments only)")
    parser.add_argument("--arrival-rate", type=float, default=None, metavar="RPS",
                        help="open-loop Poisson arrival rate per client in req/s "
                             "(default: closed loop; engine experiments only)")
    parser.add_argument("--collaboration", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="enable §VI cache collaboration between the regions' "
                             "Agar nodes (multiregion default: on; engine "
                             "experiments only)")
    args = parser.parse_args(argv)
    if args.clients_per_region is not None and args.clients_per_region <= 0:
        parser.error("--clients-per-region must be positive")
    if args.arrival_rate is not None and args.arrival_rate <= 0:
        parser.error("--arrival-rate must be positive")
    if args.region and args.regions:
        parser.error("--region and --regions are mutually exclusive")
    if args.quick and args.smoke:
        parser.error("--quick and --smoke are mutually exclusive")
    fig_collab_selected = args.experiment in ("fig_collab", "all")
    fig_failures_selected = args.experiment in ("fig_failures", "all")
    if not fig_collab_selected:
        for flag, value in (("--neighbor-read-ms", args.neighbor_read_ms),
                            ("--collab-period", args.collab_period)):
            if value is not None:
                parser.error(f"{flag} only applies to fig_collab")
    if not fig_failures_selected:
        for flag, value in (("--outage-fraction", args.outage_fraction),
                            ("--fault-region", args.fault_region)):
            if value is not None:
                parser.error(f"{flag} only applies to fig_failures")
    if args.sharded and not (fig_collab_selected or fig_failures_selected):
        parser.error("--sharded only applies to fig_collab/fig_failures")
    if args.experiment == "fig_collab":
        if args.region:
            parser.error("fig_collab sweeps fixed-strategy (agar) pairings; "
                         "use --regions to override the pairing")
        if args.regions and len([r for r in args.regions.split(",") if r.strip()]) < 2:
            parser.error("fig_collab needs at least two regions in --regions "
                         "(a pairing)")
        if args.collaboration is not None:
            parser.error("fig_collab compares collaboration against "
                         "independent caches itself; --collaboration/"
                         "--no-collaboration does not apply")
    if args.experiment == "fig_failures":
        if args.region:
            parser.error("fig_failures sweeps the strategy itself; use "
                         "--regions to override the client regions")
        if args.collaboration is not None:
            parser.error("fig_failures sweeps collaboration on/off itself; "
                         "--collaboration/--no-collaboration does not apply")
    collab_extra: dict = {}
    failures_extra: dict = {}
    try:
        if args.neighbor_read_ms:
            collab_extra["neighbor_read_ms"] = _parse_float_list(
                args.neighbor_read_ms, "--neighbor-read-ms")
        if args.collab_period:
            collab_extra["collab_periods"] = _parse_float_list(
                args.collab_period, "--collab-period")
        if args.outage_fraction:
            fractions = _parse_float_list(args.outage_fraction, "--outage-fraction")
            if any(fraction >= 1.0 for fraction in fractions):
                raise ValueError("--outage-fraction values must be below 1")
            failures_extra["outage_fractions"] = fractions
    except ValueError as error:
        parser.error(str(error))
    if args.fault_region:
        failures_extra["fault_region"] = args.fault_region
    collab_extra["sharded"] = args.sharded
    failures_extra["sharded"] = args.sharded
    region_specs = None
    if args.region:
        try:
            region_specs = tuple(RegionSpecOption.parse(text) for text in args.region)
        except ValueError as error:
            parser.error(str(error))
    settings = _settings(args)

    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    if region_specs:
        # Fig. 8 sweeps strategies (8a additionally sweeps the cache size),
        # so heterogeneous overrides that fight the sweep are rejected up
        # front with a usage error instead of a runner traceback.
        if any(name in ("fig8a", "fig8b") for name in names) and \
                any(spec.strategy is not None for spec in region_specs):
            parser.error("--region with a pinned strategy is not valid for "
                         "fig8a/fig8b (strategy sweeps); use fig6 or multiregion")
        if "fig8a" in names and \
                any(spec.cache_capacity_bytes is not None for spec in region_specs):
            parser.error("--region with a cache size is not valid for fig8a "
                         "(it sweeps the cache size)")
        if args.collaboration and any(name in ("fig6", "fig7") for name in names):
            pinned_count = sum(spec.strategy is not None for spec in region_specs)
            if 0 < pinned_count < len(region_specs):
                parser.error("--collaboration with partially pinned --region "
                             "strategies is ambiguous for fig6/fig7; pin every "
                             "region or drop --collaboration")
    for name in names:
        engine = (_engine_options(args, for_multiregion=(name == "multiregion"),
                                  region_specs=region_specs)
                  if name in ENGINE_EXPERIMENTS else None)
        print(f"=== {name} ===", file=out)
        extra = None
        if name == "fig_collab":
            extra = collab_extra
        elif name == "fig_failures":
            extra = failures_extra
        elif name == "fig_chaos":
            extra = {}
            if args.regions:
                parts = tuple(part.strip()
                              for part in args.regions.split(",")
                              if part.strip())
                if len(parts) != 2:
                    parser.error("fig_chaos drives a 2-region cluster; pass "
                                 "exactly two regions in --regions")
                extra["chaos_regions"] = parts
        elif name == "serve":
            extra = {}
            if args.regions:
                extra["serve_regions"] = tuple(
                    part.strip() for part in args.regions.split(",")
                    if part.strip())
            if args.arrival_rate:
                extra["serve_rate_rps"] = args.arrival_rate
        _run_one(name, settings, out, engine=engine, extra=extra)
        print(file=out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
