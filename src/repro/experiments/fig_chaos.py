"""Live-cluster chaos experiment: availability and recovery over real sockets.

The wire analogue of ``fig_failures``: instead of scheduling modeled faults
inside the discrete-event engine, this experiment deploys a live 2-region
:class:`~repro.serve.gateway.ServeCluster`, drives it with the **resilient**
wire client (retries, deterministic backoff, failover to the spare region),
and injects real disturbances — gateway crashes, connection resets, socket
stalls — while a :class:`~repro.serve.supervisor.ClusterSupervisor`
health-checks the gateways and restarts the dead ones with warm (ledger
replay) or cold recovery.

Each variant reports what the paper's story needs under real failures:

* **availability** — the fraction of intended requests completed anywhere
  (home region or failover), out of the conservation-accounted total;
* **recovery lag** — supervisor detection-to-serving wall time per crash,
  plus the fraction of pre-crash cache contents warm recovery restored;
* **p99 before / during / after** — wire percentiles partitioned around the
  crash, so the cost of a cold cache (and the payoff of warm recovery) is
  visible where a run-wide percentile would smear it out.

The sweep compares a clean baseline, a warm-recovered crash, a
cold-recovered crash, and a compound scenario (crash + connection reset +
socket stall across both regions).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

import numpy as np

from repro.analysis.report import Table
from repro.experiments.common import ExperimentSettings
from repro.serve.chaos import (ChaosInjector, ChaosSchedule, ConnectionReset,
                               GatewayCrash, SocketStall)
from repro.serve.gateway import ServeCluster
from repro.serve.loadgen import (RegionWireResult, WireLoadSpec,
                                 WireResilience, run_wire_load)
from repro.serve.supervisor import (ClusterSupervisor, RecoveryRecord,
                                    SupervisorConfig)
from repro.sim.engine import EngineConfig, RegionSpec
from repro.workload.workload import ArrivalSpec, WorkloadSpec

WIRE_OBJECT_SIZE_CAP = 64 * 1024

#: The window around a crash used for the "during" percentile (seconds).
DISRUPTION_WINDOW_S = 0.25


@dataclass(frozen=True, slots=True)
class FigChaosOptions:
    """Deployment and disturbance shape of the chaos experiment."""

    regions: tuple[str, str] = ("frankfurt", "dublin")
    strategy: str = "lru-5"
    connections: int = 2
    rate_rps: float = 300.0          #: open-loop rate per connection
    crash_fraction: float = 0.35     #: crash time as a fraction of the run
    retry_budget: int = 2
    base_timeout_ms: float = 150.0


@dataclass(frozen=True, slots=True)
class ChaosVariantResult:
    """One chaos variant's measured outcome."""

    name: str
    requests: int
    completed: int                   #: measured reads + failover completions
    unavailable: int
    failed_over: int
    reconnects: int
    crashes: int
    recoveries: tuple[RecoveryRecord, ...]
    p99_before_ms: float
    p99_during_ms: float
    p99_after_ms: float

    @property
    def availability(self) -> float:
        if self.requests == 0:
            return 1.0
        return self.completed / self.requests

    @property
    def mean_recovery_ms(self) -> float:
        if not self.recoveries:
            return 0.0
        return float(np.mean([r.recovery_s for r in self.recoveries])) * 1000.0

    @property
    def mean_restored_fraction(self) -> float:
        if not self.recoveries:
            return 0.0
        return float(np.mean([r.restored_fraction for r in self.recoveries]))


def _p99(latencies: list[float]) -> float:
    if not latencies:
        return 0.0
    return float(np.percentile(np.asarray(latencies), 99.0))


def _partition_p99(results: dict[str, RegionWireResult],
                   crash_at_s: float | None,
                   ) -> tuple[float, float, float]:
    """p99 of the samples before / during / after the (first) crash."""
    before: list[float] = []
    during: list[float] = []
    after: list[float] = []
    for result in results.values():
        for sample in result.samples:
            if sample.failed:
                continue
            if crash_at_s is None or sample.started_at_s < crash_at_s:
                before.append(sample.latency_ms)
            elif sample.started_at_s < crash_at_s + DISRUPTION_WINDOW_S:
                during.append(sample.latency_ms)
            else:
                after.append(sample.latency_ms)
    return _p99(before), _p99(during), _p99(after)


async def _run_variant(name: str, config: EngineConfig, spec: WireLoadSpec,
                       schedule: ChaosSchedule | None, warm: bool,
                       seed: int) -> ChaosVariantResult:
    cluster = ServeCluster.from_config(config, seed=seed, payloads=True)
    crash_count = schedule.crash_count() if schedule is not None else 0
    crash_at = None
    if schedule is not None:
        crash_times = [fault.at_s for fault in schedule.wire_faults
                       if isinstance(fault, GatewayCrash)]
        crash_at = min(crash_times) if crash_times else None
    async with cluster:
        supervisor_config = SupervisorConfig(poll_interval_s=0.02,
                                             warm_recovery=warm)
        async with ClusterSupervisor(cluster, supervisor_config) as supervisor:
            if schedule is not None:
                injector = ChaosInjector(cluster, schedule)
                results, _log = await asyncio.gather(
                    run_wire_load(cluster.addresses, spec, seed=seed),
                    injector.run())
            else:
                results = await run_wire_load(cluster.addresses, spec,
                                              seed=seed)
            # A crash close to the end of the run can leave the supervisor
            # mid-recovery when the load generator drains; give it a bounded
            # window to converge so the recovery table is complete.
            for _ in range(100):
                if len(supervisor.recoveries) >= crash_count:
                    break
                await asyncio.sleep(0.02)
            recoveries = tuple(supervisor.recoveries)
    requests = sum(result.requests for result in results.values())
    completed = sum(result.stats.count + result.connections.failed_over
                    for result in results.values())
    unavailable = sum(result.stats.unavailable_reads
                      for result in results.values())
    failed_over = sum(result.connections.failed_over
                      for result in results.values())
    reconnects = sum(result.connections.reconnects
                     for result in results.values())
    p99_before, p99_during, p99_after = _partition_p99(results, crash_at)
    return ChaosVariantResult(
        name=name, requests=requests, completed=completed,
        unavailable=unavailable, failed_over=failed_over,
        reconnects=reconnects, crashes=crash_count, recoveries=recoveries,
        p99_before_ms=p99_before, p99_during_ms=p99_during,
        p99_after_ms=p99_after)


def run_fig_chaos(settings: ExperimentSettings,
                  options: FigChaosOptions | None = None,
                  ) -> list[ChaosVariantResult]:
    """Sweep crash/restart schedules against a live 2-region cluster."""
    options = options or FigChaosOptions()
    workload = WorkloadSpec(
        object_count=settings.object_count,
        object_size=min(settings.object_size, WIRE_OBJECT_SIZE_CAP),
        request_count=settings.request_count,
        seed=settings.seed,
    )
    config = EngineConfig(
        workload=workload,
        regions=[RegionSpec(region=name, clients=1, strategy=options.strategy)
                 for name in options.regions],
        cache_capacity_bytes=settings.cache_capacity_bytes,
        topology_seed=settings.seed,
    )
    per_connection = max(
        workload.request_count // max(options.connections, 1), 1)
    spec = WireLoadSpec(
        workload=workload,
        arrival=ArrivalSpec(process="poisson", rate_rps=options.rate_rps),
        connections=options.connections,
        requests_per_connection=per_connection,
        resilience=WireResilience(retry_budget=options.retry_budget,
                                  base_timeout_ms=options.base_timeout_ms,
                                  backoff_cap_ms=50.0),
        keep_samples=True,
    )
    duration_s = per_connection / options.rate_rps
    crash_at = options.crash_fraction * duration_s
    primary, secondary = options.regions[0], options.regions[1]
    crash = ChaosSchedule(wire_faults=(GatewayCrash(primary, crash_at),))
    compound = ChaosSchedule(wire_faults=(
        GatewayCrash(primary, crash_at),
        ConnectionReset(secondary, crash_at * 0.6),
        SocketStall(secondary, crash_at * 1.4,
                    min(0.1, options.base_timeout_ms / 2000.0)),
    ))
    variants = [
        ("clean", None, True),
        ("crash-warm", crash, True),
        ("crash-cold", crash, False),
        ("crash+reset+stall", compound, True),
    ]
    out = []
    for name, schedule, warm in variants:
        out.append(asyncio.run(_run_variant(
            name, config, spec, schedule, warm, settings.seed)))
    return out


def render_fig_chaos(results: list[ChaosVariantResult]) -> Table:
    """Availability / recovery-lag / p99-phase table, one row per variant."""
    table = Table(
        title="Chaos tier — availability and recovery over live gateways",
        columns=["variant", "requests", "avail %", "unavail", "failover",
                 "reconn", "crashes", "recovery ms", "restored %",
                 "p99 before", "p99 during", "p99 after"])
    for result in results:
        table.add_row(
            result.name, result.requests, result.availability * 100.0,
            result.unavailable, result.failed_over, result.reconnects,
            result.crashes, result.mean_recovery_ms,
            result.mean_restored_fraction * 100.0,
            result.p99_before_ms, result.p99_during_ms, result.p99_after_ms)
    return table
