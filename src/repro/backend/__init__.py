"""Backend substrate: per-region buckets and the erasure-coded object store.

Stands in for the Amazon S3 buckets of the paper's deployment (Fig. 1).
"""

from repro.backend.bucket import BucketStats, ChunkNotFoundError, RegionBucket
from repro.backend.object_store import (
    ErasureCodedStore,
    ObjectNotFoundError,
    StoreDescription,
)
from repro.backend.placement import (
    ExplicitPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    SpreadPlacement,
)

__all__ = [
    "BucketStats",
    "ChunkNotFoundError",
    "ErasureCodedStore",
    "ExplicitPlacement",
    "ObjectNotFoundError",
    "PlacementPolicy",
    "RegionBucket",
    "RoundRobinPlacement",
    "SpreadPlacement",
    "StoreDescription",
]
