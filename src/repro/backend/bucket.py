"""Per-region persistent chunk buckets (the S3 stand-in).

Each region of the deployment hosts one :class:`RegionBucket`, holding the
chunks placed there.  The bucket is a plain in-process store; wide-area read
latency is charged by the client/simulator through the latency model, not here,
which mirrors how the paper's S3 buckets are dumb storage and all intelligence
lives in the client and in Agar.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.erasure.chunk import Chunk, ChunkId


class ChunkNotFoundError(KeyError):
    """Raised when a requested chunk is not stored in the bucket."""


@dataclass
class BucketStats:
    """Counters for one bucket: useful for load and traffic analysis."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0


@dataclass
class RegionBucket:
    """Persistent chunk storage for one region.

    Attributes:
        region: name of the region hosting this bucket.
    """

    region: str
    _chunks: dict[ChunkId, Chunk] = field(default_factory=dict, repr=False)
    stats: BucketStats = field(default_factory=BucketStats)

    def put(self, chunk: Chunk) -> None:
        """Store (or overwrite) a chunk."""
        self._chunks[chunk.chunk_id] = chunk
        self.stats.puts += 1
        self.stats.bytes_written += chunk.size

    def get(self, chunk_id: ChunkId) -> Chunk:
        """Fetch a chunk.

        Raises:
            ChunkNotFoundError: if the chunk is not stored here.
        """
        try:
            chunk = self._chunks[chunk_id]
        except KeyError:
            raise ChunkNotFoundError(
                f"chunk {chunk_id} not found in bucket {self.region!r}"
            ) from None
        self.stats.gets += 1
        self.stats.bytes_read += chunk.size
        return chunk

    def contains(self, chunk_id: ChunkId) -> bool:
        """True if the chunk is stored in this bucket."""
        return chunk_id in self._chunks

    def delete(self, chunk_id: ChunkId) -> bool:
        """Delete a chunk; returns True if it existed."""
        if chunk_id in self._chunks:
            del self._chunks[chunk_id]
            self.stats.deletes += 1
            return True
        return False

    def chunks_for_key(self, key: str) -> list[Chunk]:
        """All chunks of object ``key`` stored in this bucket, sorted by index."""
        return sorted(
            (chunk for chunk_id, chunk in self._chunks.items() if chunk_id.key == key),
            key=lambda chunk: chunk.index,
        )

    def keys(self) -> set[str]:
        """Distinct object keys that have at least one chunk here."""
        return {chunk_id.key for chunk_id in self._chunks}

    @property
    def chunk_count(self) -> int:
        """Number of chunks currently stored."""
        return len(self._chunks)

    @property
    def used_bytes(self) -> int:
        """Total bytes of chunk payloads currently stored."""
        return sum(chunk.size for chunk in self._chunks.values())

    def clear(self) -> None:
        """Drop every chunk (used between experiment runs)."""
        self._chunks.clear()
