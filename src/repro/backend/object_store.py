"""The geo-distributed erasure-coded object store.

:class:`ErasureCodedStore` ties the codec, a placement policy and one
:class:`~repro.backend.bucket.RegionBucket` per region into the storage system
of Fig. 1: ``put`` encodes an object and scatters its chunks round-robin across
regions; ``get_chunk`` serves individual chunks; the metadata catalog records
where every chunk lives so that clients (and Agar's Region Manager) can plan
reads without touching payloads.

Objects can be stored with real payloads (exercising the Reed-Solomon code) or
*virtually* (sizes and placement only), which is what the large-scale
experiments use; see :meth:`ErasureCodedStore.populate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.backend.bucket import ChunkNotFoundError, RegionBucket
from repro.backend.placement import PlacementPolicy, RoundRobinPlacement
from repro.erasure.chunk import Chunk, ChunkId, ErasureCodingParams, ObjectMetadata
from repro.erasure.codec import EncodedObject, ErasureCodec
from repro.geo.topology import Topology


class ObjectNotFoundError(KeyError):
    """Raised when an object key is not present in the store's catalog."""


@dataclass(frozen=True)
class StoreDescription:
    """Summary of a store's content, used in experiment reports."""

    object_count: int
    total_object_bytes: int
    total_stored_bytes: int
    chunks_per_object: int
    regions: tuple[str, ...]


class ErasureCodedStore:
    """Erasure-coded object store spanning the regions of a topology.

    Args:
        topology: the deployment (regions + latency model).
        params: erasure-coding parameters; defaults to the paper's RS(9, 3).
        placement: chunk placement policy; defaults to round-robin (Fig. 1).
        codec: optionally share a codec instance (e.g. a Vandermonde one).
    """

    def __init__(
        self,
        topology: Topology,
        params: ErasureCodingParams | None = None,
        placement: PlacementPolicy | None = None,
        codec: ErasureCodec | None = None,
    ) -> None:
        self._topology = topology
        self._params = params or ErasureCodingParams(9, 3)
        self._placement = placement or RoundRobinPlacement()
        self._codec = codec or ErasureCodec(self._params)
        self._buckets = {name: RegionBucket(region=name) for name in topology.region_names}
        self._catalog: dict[str, ObjectMetadata] = {}

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def topology(self) -> Topology:
        """The deployment this store spans."""
        return self._topology

    @property
    def params(self) -> ErasureCodingParams:
        """The erasure-coding parameters in use."""
        return self._params

    @property
    def codec(self) -> ErasureCodec:
        """The codec used to encode and decode objects."""
        return self._codec

    def bucket(self, region: str) -> RegionBucket:
        """Return the bucket hosted in ``region``."""
        self._topology.validate_region(region)
        return self._buckets[region]

    def keys(self) -> list[str]:
        """All object keys currently stored, sorted."""
        return sorted(self._catalog)

    def __contains__(self, key: str) -> bool:
        return key in self._catalog

    def __len__(self) -> int:
        return len(self._catalog)

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def put(self, key: str, data: bytes, version: int = 0) -> ObjectMetadata:
        """Encode ``data`` and scatter its chunks across the regions."""
        encoded = self._codec.encode(key, data, version=version)
        return self._store_encoded(encoded)

    def put_many(self, items: Sequence[tuple[str, bytes]],
                 version: int = 0) -> list[ObjectMetadata]:
        """Encode and store a batch of ``(key, data)`` objects.

        The whole batch goes through :meth:`ErasureCodec.encode_many`, which
        applies the parity operator once per group of equally sized objects —
        the fast path for bulk ingest (:meth:`populate` with real payloads
        uses it).  Placement and metadata are identical to repeated
        :meth:`put` calls.
        """
        encoded_objects = self._codec.encode_many(items, version=version)
        return [self._store_encoded(encoded) for encoded in encoded_objects]

    def put_virtual(self, key: str, object_size: int, version: int = 0) -> ObjectMetadata:
        """Store an object without payloads (metadata and placement only)."""
        encoded = self._codec.encode_virtual(key, object_size, version=version)
        return self._store_encoded(encoded)

    def _store_encoded(self, encoded: EncodedObject) -> ObjectMetadata:
        metadata = encoded.metadata
        placement = self._placement.place(
            metadata.key, metadata.params.total_chunks, self._topology.region_names
        )
        metadata.chunk_locations = dict(placement)
        for chunk in encoded.chunks:
            region = placement[chunk.index]
            self._buckets[region].put(chunk)
        self._catalog[metadata.key] = metadata
        return metadata

    def populate(self, object_count: int, object_size: int, key_prefix: str = "object",
                 virtual: bool = True, seed: int = 0) -> list[str]:
        """Create the paper's working set: ``object_count`` objects of ``object_size`` bytes.

        Args:
            object_count: number of objects (the paper uses 300).
            object_size: size of each object in bytes (the paper uses 1 MB).
            key_prefix: keys are ``f"{key_prefix}-{i}"``.
            virtual: if True (default) chunks carry no payload, which keeps
                large experiments fast; if False, random payloads are encoded
                through the Reed-Solomon code.
            seed: seed for payload generation when ``virtual=False``.

        Returns:
            The list of keys created, in insertion order.
        """
        import numpy as np

        keys = [f"{key_prefix}-{index}" for index in range(object_count)]
        if virtual:
            for key in keys:
                self.put_virtual(key, object_size)
            return keys

        rng = np.random.default_rng(seed)
        # Real payloads go through the batched encode path; bounded batches
        # keep transient memory at a few dozen objects regardless of count.
        batch = 32
        for start in range(0, object_count, batch):
            items = [
                (key, rng.integers(0, 256, size=object_size, dtype=np.uint8).tobytes())
                for key in keys[start:start + batch]
            ]
            self.put_many(items)
        return keys

    def delete(self, key: str) -> None:
        """Remove an object and all of its chunks.

        Raises:
            ObjectNotFoundError: if the key is unknown.
        """
        metadata = self.metadata(key)
        for index, region in metadata.chunk_locations.items():
            self._buckets[region].delete(ChunkId(key=key, index=index))
        del self._catalog[key]

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def metadata(self, key: str) -> ObjectMetadata:
        """Return the metadata of ``key``.

        Raises:
            ObjectNotFoundError: if the key is unknown.
        """
        try:
            return self._catalog[key]
        except KeyError:
            raise ObjectNotFoundError(f"object {key!r} not found") from None

    def get_chunk(self, key: str, index: int) -> Chunk:
        """Fetch one chunk from whichever bucket stores it."""
        metadata = self.metadata(key)
        try:
            region = metadata.chunk_locations[index]
        except KeyError:
            raise ChunkNotFoundError(f"object {key!r} has no chunk {index}") from None
        return self._buckets[region].get(ChunkId(key=key, index=index))

    def get_chunks(self, key: str, indices: Iterable[int]) -> dict[int, Chunk]:
        """Fetch several chunks of one object with a single catalog lookup.

        The serving tier's per-request fetch: one metadata resolution instead
        of one per chunk.  Raises :class:`ChunkNotFoundError` on any unknown
        index.
        """
        metadata = self.metadata(key)
        locations = metadata.chunk_locations
        buckets = self._buckets
        chunks: dict[int, Chunk] = {}
        for index in indices:
            try:
                region = locations[index]
            except KeyError:
                raise ChunkNotFoundError(
                    f"object {key!r} has no chunk {index}") from None
            chunks[index] = buckets[region].get(ChunkId(key=key, index=index))
        return chunks

    def chunk_region(self, key: str, index: int) -> str:
        """Return the region storing chunk ``index`` of ``key``."""
        metadata = self.metadata(key)
        try:
            return metadata.chunk_locations[index]
        except KeyError:
            raise ChunkNotFoundError(f"object {key!r} has no chunk {index}") from None

    def chunks_by_region(self, key: str) -> dict[str, list[int]]:
        """Group the chunk indices of ``key`` by hosting region."""
        metadata = self.metadata(key)
        grouped: dict[str, list[int]] = {name: [] for name in self._topology.region_names}
        for index, region in metadata.chunk_locations.items():
            grouped[region].append(index)
        for indices in grouped.values():
            indices.sort()
        return grouped

    def get_object(self, key: str, prefer_data_chunks: bool = True) -> bytes:
        """Read and decode a full object (only for objects stored with payloads)."""
        metadata = self.metadata(key)
        wanted = metadata.params.data_chunks
        indices = metadata.data_chunk_indices + metadata.parity_chunk_indices
        if not prefer_data_chunks:
            indices = list(reversed(indices))
        collected: dict[int, Chunk] = {}
        for index in indices:
            chunk = self.get_chunk(key, index)
            if chunk.payload is None:
                continue
            collected[index] = chunk
            if len(collected) >= wanted:
                break
        return self._codec.decode(metadata, collected)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def describe(self) -> StoreDescription:
        """Summarise what is stored (object count, bytes, chunk fan-out)."""
        total_object_bytes = sum(meta.size for meta in self._catalog.values())
        total_stored_bytes = sum(bucket.used_bytes for bucket in self._buckets.values())
        return StoreDescription(
            object_count=len(self._catalog),
            total_object_bytes=total_object_bytes,
            total_stored_bytes=total_stored_bytes,
            chunks_per_object=self._params.total_chunks,
            regions=tuple(self._topology.region_names),
        )
