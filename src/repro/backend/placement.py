"""Chunk placement policies: which region stores which chunk of an object.

The paper distributes the twelve chunks of each object among the six regions
round-robin, two chunks per region (Fig. 1), and Agar's Region Manager assumes
a round-robin policy (§III-a).  The policy abstraction also allows spreading
placements (offsetting the start region per object) and custom mappings, which
the tests and the ablation benchmarks use.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class PlacementPolicy(ABC):
    """Maps chunk indices of an object onto region names."""

    @abstractmethod
    def place(self, key: str, total_chunks: int, regions: list[str]) -> dict[int, str]:
        """Return a mapping ``chunk index -> region name``.

        Args:
            key: object key (lets policies vary placement per object).
            total_chunks: number of chunks (``k + m``).
            regions: candidate regions in a stable order.
        """

    def chunks_per_region(self, key: str, total_chunks: int, regions: list[str]) -> dict[str, list[int]]:
        """Convenience inverse of :meth:`place`: region -> chunk indices."""
        placement = self.place(key, total_chunks, regions)
        grouped: dict[str, list[int]] = {region: [] for region in regions}
        for index, region in placement.items():
            grouped[region].append(index)
        for indices in grouped.values():
            indices.sort()
        return grouped


class RoundRobinPlacement(PlacementPolicy):
    """The paper's policy: chunk ``i`` goes to region ``i mod len(regions)``.

    Every object uses the same assignment, so with 12 chunks over 6 regions
    each region holds exactly 2 chunks of every object, as in Fig. 1.
    """

    def place(self, key: str, total_chunks: int, regions: list[str]) -> dict[int, str]:
        if not regions:
            raise ValueError("at least one region is required")
        if total_chunks < 0:
            raise ValueError("total_chunks must be non-negative")
        return {index: regions[index % len(regions)] for index in range(total_chunks)}


class SpreadPlacement(PlacementPolicy):
    """Round-robin with a per-object starting offset derived from the key.

    Spreading the start region balances load when ``k + m`` is not a multiple
    of the region count; used by ablation experiments.
    """

    def place(self, key: str, total_chunks: int, regions: list[str]) -> dict[int, str]:
        if not regions:
            raise ValueError("at least one region is required")
        if total_chunks < 0:
            raise ValueError("total_chunks must be non-negative")
        offset = _stable_hash(key) % len(regions)
        return {
            index: regions[(index + offset) % len(regions)]
            for index in range(total_chunks)
        }


class ExplicitPlacement(PlacementPolicy):
    """A fixed, caller-supplied placement map (primarily for tests)."""

    def __init__(self, assignments: dict[str, dict[int, str]], default: PlacementPolicy | None = None) -> None:
        self._assignments = {key: dict(mapping) for key, mapping in assignments.items()}
        self._default = default or RoundRobinPlacement()

    def place(self, key: str, total_chunks: int, regions: list[str]) -> dict[int, str]:
        if key in self._assignments:
            mapping = self._assignments[key]
            missing = [index for index in range(total_chunks) if index not in mapping]
            if missing:
                raise ValueError(f"explicit placement for {key!r} is missing chunks {missing}")
            unknown = sorted(set(mapping.values()) - set(regions))
            if unknown:
                raise ValueError(f"explicit placement for {key!r} uses unknown regions {unknown}")
            return {index: mapping[index] for index in range(total_chunks)}
        return self._default.place(key, total_chunks, regions)


def _stable_hash(text: str) -> int:
    """A small deterministic string hash (FNV-1a); ``hash()`` is salted per-process."""
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value
