#!/usr/bin/env python3
"""Serving-tier tour: a live gateway, wire load, and a verified replay.

Three stops, all on loopback sockets with ephemeral ports:

1. deploy a one-region :class:`~repro.serve.gateway.ServeCluster`, PUT an
   object over the wire and GET it back, showing the strategy decision the
   gateway reports in its ``X-Agar-*`` headers;
2. drive the cluster with the wire load generator and print the measured
   p50/p95/p99 table next to the simulated table for the same workload;
3. run the seeded event engine on the identical configuration, replay its
   trace through a fresh cluster, and diff the decision ledgers — they must
   be bit-identical (the PR 9 equivalence oracle).

Run with:  PYTHONPATH=src python examples/serve_demo.py
"""

from __future__ import annotations

import asyncio

from repro.analysis.report import Table
from repro.serve.gateway import ServeCluster
from repro.serve.ledger import diff_ledgers
from repro.serve.loadgen import WireLoadSpec, run_wire_load, wire_report_table
from repro.serve.protocol import parse_response
from repro.serve.replay import replay_trace
from repro.serve.trace import run_and_trace
from repro.sim.engine import EngineConfig, EngineResult, RegionSpec
from repro.workload.workload import WorkloadSpec

MEGABYTE = 1024 * 1024
SEED = 11

CONFIG = EngineConfig(
    workload=WorkloadSpec(object_count=50, object_size=32 * 1024,
                          request_count=400, seed=SEED),
    # Online LRU caches on the read path, so the free-running wire load shows
    # hits without a tick driver (the Agar optimiser reconfigures on a
    # simulated-clock period, which wall-clock wire traffic barely advances).
    regions=[RegionSpec(region="frankfurt", clients=1, strategy="lru-3"),
             RegionSpec(region="dublin", clients=1, strategy="lru-3")],
    cache_capacity_bytes=MEGABYTE,
    topology_seed=SEED,
)


async def http(address: tuple[str, int], request: bytes,
               ) -> tuple[int, dict, bytes]:
    reader, writer = await asyncio.open_connection(*address)
    try:
        writer.write(request)
        await writer.drain()
        writer.write_eof()
        raw = await reader.read()
    finally:
        writer.close()
        await writer.wait_closed()
    parsed = parse_response(raw)
    assert parsed is not None, "gateway sent no parseable response"
    return parsed[0]


async def put_and_get(cluster: ServeCluster) -> None:
    address = cluster.addresses["frankfurt"]
    body = b"breaking-news " * 64
    put = (f"PUT /objects/demo-article HTTP/1.1\r\nHost: demo\r\n"
           f"Content-Length: {len(body)}\r\n\r\n").encode() + body
    status, _, _ = await http(address, put)
    print(f"PUT /objects/demo-article           -> {status}")

    get = b"GET /objects/demo-article HTTP/1.1\r\nHost: demo\r\n\r\n"
    for attempt in ("first read (cold)", "second read    "):
        status, headers, payload = await http(address, get)
        decision = {name: value for name, value in headers.items()
                    if name.startswith("x-agar-")}
        print(f"GET  /objects/demo-article {attempt:>15s} -> {status}, "
              f"{len(payload)} bytes, {decision}")
        assert payload == body


def simulated_table(result: EngineResult) -> Table:
    table = Table(title="Simulated latency (same workload, event engine)",
                  columns=["region", "requests", "mean ms", "p50 ms",
                           "p95 ms", "p99 ms", "hit %"])
    for region, run in result.regions.items():
        stats = run.stats
        table.add_row(region, stats.count, stats.mean_latency_ms,
                      stats.p50_latency_ms, stats.p95_latency_ms,
                      stats.p99_latency_ms, stats.hit_ratio * 100.0)
    return table


async def wire_load(cluster: ServeCluster) -> None:
    spec = WireLoadSpec(workload=CONFIG.workload, connections=2,
                        pipeline_depth=16)
    results = await run_wire_load(cluster.addresses, spec, seed=SEED)
    print(wire_report_table(results).render())


async def main() -> None:
    print("== 1. one PUT and two GETs over the wire ==")
    async with ServeCluster.from_config(CONFIG, seed=SEED,
                                        payloads=True) as cluster:
        await put_and_get(cluster)

        print("\n== 2. measured wire load vs the simulated run ==")
        await wire_load(cluster)

    result, trace, expected = run_and_trace(CONFIG, seed=SEED)
    print(simulated_table(result).render())
    print("(wire latencies are loopback wall-clock; simulated latencies are "
          "modeled geo RTTs — decisions, not latencies, are comparable)")

    print("\n== 3. replaying the simulated trace through fresh gateways ==")
    async with ServeCluster.from_config(CONFIG, seed=SEED) as fresh:
        live = await replay_trace(fresh.addresses, trace)
    for region in sorted(expected):
        divergence = diff_ledgers(expected[region], live[region])
        verdict = "bit-identical" if divergence is None else divergence
        print(f"{region}: {len(expected[region])} ledger entries replayed "
              f"over the wire -> {verdict}")
        assert divergence is None


if __name__ == "__main__":
    asyncio.run(main())
