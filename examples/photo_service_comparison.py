#!/usr/bin/env python3
"""A geo-distributed photo-serving service: Agar vs. classical cache policies.

The paper's motivation (§I) is a cloud application that serves content to end
users from an erasure-coded store spanning many regions.  This example models a
photo service whose European users (Frankfurt) and Australian users (Sydney)
read 1 MB photos with a Zipfian popularity distribution, and compares the
average photo load time under:

* no caching at all (Backend),
* memcached-style LRU keeping 5 chunks per photo,
* the paper's LFU baseline keeping 7 or 9 chunks per photo,
* Agar.

Run with:  python examples/photo_service_comparison.py
"""

from __future__ import annotations

from repro.analysis import Table, improvement_summary
from repro.sim import run_comparison
from repro.workload import zipfian_workload

MEGABYTE = 1024 * 1024
STRATEGIES = ["agar", "lfu-7", "lfu-9", "lru-5", "lru-1", "backend"]


def main() -> None:
    workload = zipfian_workload(
        skew=1.1, request_count=1000, object_count=300, object_size=MEGABYTE, seed=7,
    )

    table = Table(
        title="Average photo load time (ms), 10 MB cache per region, Zipf 1.1",
        columns=("strategy", "frankfurt", "sydney"),
    )
    results = {}
    for region in ("frankfurt", "sydney"):
        print(f"simulating {region} ({len(STRATEGIES)} strategies x 3 runs) ...")
        results[region] = run_comparison(
            workload=workload,
            strategies=STRATEGIES,
            client_region=region,
            cache_capacity_bytes=10 * MEGABYTE,
            runs=3,
        )

    for strategy in STRATEGIES:
        table.add_row(
            strategy,
            results["frankfurt"][strategy].mean_latency_ms,
            results["sydney"][strategy].mean_latency_ms,
        )
    print()
    print(table.render())

    for region in ("frankfurt", "sydney"):
        latencies = {name: agg.mean_latency_ms for name, agg in results[region].items()}
        summary = improvement_summary(latencies, subject="agar", exclude=("backend",))
        print(
            f"\n{region}: Agar loads photos {summary['vs_best_pct']:.1f}% faster than the best "
            f"static policy ({summary['best_other']}) and {summary['vs_worst_pct']:.1f}% faster "
            f"than the worst ({summary['worst_other']}); "
            f"hit ratio {results[region]['agar'].hit_ratio * 100:.0f}%"
        )


if __name__ == "__main__":
    main()
