#!/usr/bin/env python3
"""Flash crowd: Agar re-optimising its cache as the popular set shifts.

The paper argues that access patterns vary over time, which is why Agar
recomputes a static cache configuration every period (§III).  This example
simulates a news site where the morning's popular articles are suddenly
displaced by a breaking story: halfway through the run the Zipfian ranking is
shifted to a disjoint set of objects ("the flash crowd"), and we watch Agar's
cache configuration and hit ratio follow the shift, period by period.

Run with:  python examples/flash_crowd_adaptation.py
"""

from __future__ import annotations

from repro import ErasureCodedStore, default_topology, make_strategy
from repro.client import HitType
from repro.sim import SimulationClock
from repro.workload import zipfian_workload, generate_requests

MEGABYTE = 1024 * 1024
PHASE_REQUESTS = 1200
SHIFT = 150  # the flash crowd targets object-150..., disjoint from the morning's set


def main() -> None:
    topology = default_topology(seed=3)
    store = ErasureCodedStore(topology)
    store.populate(object_count=300, object_size=MEGABYTE)

    clock = SimulationClock()
    agar = make_strategy("agar", store, "frankfurt", cache_capacity_bytes=10 * MEGABYTE, clock=clock)

    morning = generate_requests(
        zipfian_workload(1.1, request_count=PHASE_REQUESTS, object_count=140, seed=11))
    # The breaking story: same skew, but over objects 150..289.
    breaking = generate_requests(
        zipfian_workload(1.1, request_count=PHASE_REQUESTS, object_count=140, seed=12))
    requests = morning + [
        request.__class__(key=f"object-{int(request.key.split('-')[1]) + SHIFT}",
                          operation=request.operation, sequence=request.sequence + PHASE_REQUESTS)
        for request in breaking
    ]

    window = 200
    hits_in_window = 0
    print(f"{'requests':>10s}  {'phase':>8s}  {'hit ratio':>9s}  {'configured objects (sample)'}")
    for index, request in enumerate(requests):
        result = agar.read(request.key, now=clock.now())
        clock.advance_ms(result.latency_ms / 2)  # two concurrent clients, as in §V-A
        if result.hit_type is not HitType.MISS:
            hits_in_window += 1
        if (index + 1) % window == 0:
            configured = agar.node.current_configuration.keys()
            sample = ", ".join(sorted(configured, key=lambda key: int(key.split("-")[1]))[:5])
            phase = "morning" if index < PHASE_REQUESTS else "breaking"
            print(f"{index + 1:>10d}  {phase:>8s}  {hits_in_window / window:>8.0%}  "
                  f"[{sample}{', ...' if len(configured) > 5 else ''}]")
            hits_in_window = 0

    history = agar.node.reconfiguration_history()
    print(f"\n{len(history)} reconfigurations; last configuration histogram "
          f"(chunks per object -> objects): {history[-1].chunk_histogram}")
    print("Note how the configured keys jump from object-0.. to object-150.. shortly "
          "after the flash crowd begins, and the hit ratio recovers within a couple of periods.")


if __name__ == "__main__":
    main()
