#!/usr/bin/env python3
"""§VI extension demo: nearby caches (Frankfurt + Dublin) collaborating.

Two European Agar nodes serve very similar workloads.  Running them
independently duplicates the same popular chunks in both caches; with the
collaboration extension each node discounts caching options whose chunks a
neighbour already pins, so together they cover more distinct objects.

Run with:  python examples/collaborative_caching.py
"""

from __future__ import annotations

from repro import AgarNode, ErasureCodedStore, default_topology
from repro.extensions import CollaborationCoordinator
from repro.workload import zipfian_workload, generate_requests

MEGABYTE = 1024 * 1024


def build_nodes(store: ErasureCodedStore) -> list[AgarNode]:
    return [
        AgarNode("frankfurt", store, cache_capacity_bytes=5 * MEGABYTE),
        AgarNode("dublin", store, cache_capacity_bytes=5 * MEGABYTE),
    ]


def feed(nodes: list[AgarNode], seed: int) -> None:
    workload = zipfian_workload(1.1, request_count=800, object_count=300, seed=seed)
    for node in nodes:
        for request in generate_requests(workload):
            node.request_monitor.record_request(request.key)


def describe(label: str, nodes: list[AgarNode]) -> set:
    chunk_sets = [node.current_configuration.chunk_ids() for node in nodes]
    objects = [set(node.current_configuration.keys()) for node in nodes]
    overlap = len(chunk_sets[0] & chunk_sets[1])
    distinct_objects = len(objects[0] | objects[1])
    print(f"{label:<15s} frankfurt={len(chunk_sets[0])} chunks, dublin={len(chunk_sets[1])} chunks, "
          f"duplicated chunks={overlap}, distinct objects covered={distinct_objects}")
    return objects[0] | objects[1]


def main() -> None:
    topology = default_topology(seed=2)
    store = ErasureCodedStore(topology)
    store.populate(object_count=300, object_size=MEGABYTE)

    # Independent nodes: each optimises only for itself.
    independent = build_nodes(store)
    feed(independent, seed=31)
    for node in independent:
        node.reconfigure(now=30.0)
    independent_objects = describe("independent", independent)

    # Collaborative nodes: same workload, but they exchange announcements.
    collaborative = build_nodes(store)
    coordinator = CollaborationCoordinator(collaborative, neighbor_read_ms=120.0)
    feed(collaborative, seed=31)
    coordinator.reconfigure_all(now=30.0)
    collaborative_objects = describe("collaborative", collaborative)

    gained = len(collaborative_objects) - len(independent_objects)
    print(f"\nCollaboration covers {gained:+d} more distinct objects with the same total cache space.")
    print("Pairwise duplicated chunks:", coordinator.overlap_report())


if __name__ == "__main__":
    main()
