#!/usr/bin/env python3
"""Hedged and retried reads: taming tail latency during a region outage.

The recovery-aware resilience tier (``repro.client.resilience``) adds three
reactions to a misbehaving deployment:

* **retries** — a remote chunk fetch whose sampled latency overshoots
  ``timeout_factor ×`` its link's expectation is abandoned and redrawn,
  paying the timeout plus a deterministic exponential backoff, under a
  per-read retry budget;
* **hedging** — when the slowest in-flight backend chunk exceeds its link's
  quantile-tracked deadline (an EWMA quantile estimator per link), one extra
  parity chunk is fetched speculatively from the next-cheapest survivor and
  the read takes whichever finishes first;
* **emergency reconfiguration** — fault transitions trigger an immediate
  Agar knapsack re-solve against the survivor topology instead of waiting
  for the periodic timer.

This example runs the Frankfurt + Dublin deployment through a Sao Paulo
outage three times — resilience off, emergency reconfiguration only, and
full hedging — and compares the p99 during the outage window, plus the
retry/hedge counters that quantify what the speculative machinery cost.

Run with:  python examples/hedged_reads.py

See docs/failures.md ("Provenance and hedging") for the semantics.
"""

from __future__ import annotations

from repro.client.resilience import ResilienceConfig
from repro.client.stats import windowed_latency_series
from repro.client.strategies import ClientConfig
from repro.sim.engine import EngineConfig, EventEngine, RegionSpec, WorkloadSpec
from repro.sim.faults import FaultSchedule, RegionOutage

MEGABYTE = 1024 * 1024

OUTAGE = RegionOutage("sao_paulo", start_s=20.0, end_s=60.0)

#: Aggressive against the topology's jitter (σ = 0.06 on the log-normal
#: links), so retries and hedges actually fire at example scale.
HEDGED = ResilienceConfig(
    retry_budget=1, timeout_factor=1.1, backoff_base_ms=4.0,
    hedge=True, hedge_quantile=0.7, hedge_min_samples=8,
    emergency_reconfiguration=True,
)

#: Fault-reactive reconfiguration alone: ``active`` stays False, so reads
#: keep the fast fixed-draw composition — only the knapsack re-solve moves
#: from the periodic timer to the fault transition itself.
REACTIVE_ONLY = ResilienceConfig(emergency_reconfiguration=True)


def run(resilience: ResilienceConfig | None):
    config = EngineConfig(
        workload=WorkloadSpec(request_count=400, object_count=120),
        regions=(RegionSpec("frankfurt", clients=2),
                 RegionSpec("dublin", clients=2)),
        cache_capacity_bytes=10 * MEGABYTE,
        timer_reconfiguration=True,
        client=ClientConfig(resilience=resilience),
        faults=FaultSchedule([OUTAGE]),
    )
    engine = EventEngine(config, keep_results=True)
    return engine.run(seed=7)


def p99_during_outage(result) -> float:
    reads = [read
             for region_result in result.regions.values()
             for read in region_result.results]
    duration = max(r.duration_s for r in result.regions.values())
    windows = windowed_latency_series(reads, window_s=duration / 16,
                                      end_s=duration)
    return max((window.p99_ms for window in windows
                if window.start_s < OUTAGE.end_s
                and window.end_s > OUTAGE.start_s and window.reads > 0),
               default=0.0)


def describe(label: str, result) -> None:
    stats = result.overall_stats()
    print(f"{label:14s} mean {stats.mean_latency_ms:7.1f} ms   "
          f"p99 {stats.p99_latency_ms:7.1f} ms   "
          f"p99 during outage {p99_during_outage(result):7.1f} ms   "
          f"retries {stats.retries_total:4d}   "
          f"hedged {stats.hedged_reads:4d} ({stats.hedge_wins} won)")


def main() -> None:
    print("Sao Paulo outage [20 s, 60 s), resilience tiers compared "
          "(Frankfurt + Dublin, RS(9, 3)):\n")
    plain = run(None)
    describe("resilience off", plain)
    reactive = run(REACTIVE_ONLY)
    describe("reactive only", reactive)
    hedged = run(HEDGED)
    describe("hedging on", hedged)

    plain_stats = plain.overall_stats()
    reactive_stats = reactive.overall_stats()
    hedged_stats = hedged.overall_stats()
    assert plain_stats.retries_total == 0 and plain_stats.hedged_reads == 0
    assert reactive_stats.retries_total == 0
    assert reactive_stats.hedged_reads == 0
    assert hedged_stats.retries_total > 0
    assert hedged_stats.hedged_reads > 0

    print("\nReactive-only keeps the fast read path and merely moves the "
          "knapsack\nre-solve from the periodic timer to the outage "
          "transition itself, so it\nis the cheapest insurance.  Full "
          "hedging additionally redraws timed-out\nchunk fetches (timeout "
          "plus deterministic backoff) and races stragglers\nagainst a "
          "spare parity chunk.  On this topology the links are tight\n"
          "(σ = 0.06), so speculation is mostly premium: the counters show "
          "how\noften it fired and how rarely the spare won.  The machinery "
          "earns its\nkeep when links are heavy-tailed or browned out — "
          "rerun with a\nBrownout in the schedule to watch the balance "
          "shift.")


if __name__ == "__main__":
    main()
