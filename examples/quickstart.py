#!/usr/bin/env python3
"""Quickstart: an erasure-coded geo-store with an Agar cache in front of it.

This walks through the core API in five steps:

1. build the six-region deployment of the paper (Fig. 1);
2. store an object through the Reed-Solomon codec and read it back;
3. start an Agar node for the Frankfurt region;
4. send it a skewed stream of requests;
5. inspect the cache configuration Agar computed.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import AgarNode, ErasureCodedStore, default_topology
from repro.workload import zipfian_workload, generate_requests

MEGABYTE = 1024 * 1024


def main() -> None:
    # 1. The deployment: six regions, a latency matrix, round-robin placement.
    topology = default_topology(seed=1)
    store = ErasureCodedStore(topology)
    print("Regions:", ", ".join(topology.region_names))

    # 2. Store one real object: it is split into 9 data + 3 parity chunks and
    #    scattered across the regions; any 9 chunks reconstruct it.
    payload = b"a photo of a capybara " * 1000
    store.put("photo-001", payload)
    print(f"photo-001 -> {store.params.total_chunks} chunks, "
          f"{store.metadata('photo-001').chunk_size} bytes each")
    assert store.get_object("photo-001") == payload

    # The simulated working set of the paper: 300 x 1 MB objects (virtual
    # payloads - placement and sizes only, which is all the cache needs).
    store.populate(object_count=300, object_size=MEGABYTE)

    # 3. An Agar node for Frankfurt with a 10 MB cache.
    node = AgarNode("frankfurt", store, cache_capacity_bytes=10 * MEGABYTE)
    print("\nRegion latency estimates from Frankfurt (ms):")
    for estimate in node.region_manager.estimates_table():
        print(f"  {estimate.region:12s} {estimate.latency_ms:8.0f}")

    # 4. A Zipfian request stream (skew 1.1, like the paper's default workload).
    workload = zipfian_workload(1.1, request_count=2000, object_count=300, seed=42)
    now = 0.0
    for request in generate_requests(workload):
        node.on_request(request.key, now=now)
        now += 0.5  # one read every 500 ms of simulated time

    # 5. What did Agar decide to cache?
    configuration = node.current_configuration
    print(f"\nAgar configured {len(configuration)} objects, "
          f"{configuration.weight} chunks total "
          f"({len(node.reconfiguration_history())} reconfigurations)")
    print("chunks cached per object (top 10 by popularity):")
    ranked = sorted(configuration.options, key=lambda option: -option.popularity)
    for option in ranked[:10]:
        print(f"  {option.key:12s} weight={option.weight}  "
              f"improvement={option.latency_improvement_ms:6.0f} ms  "
              f"popularity={option.popularity:6.1f}")

    hints = node.request_monitor.peek_hints(ranked[0].key)
    print(f"\nA client reading {hints.key} is told to use cached chunks {hints.cached_chunk_indices}")


if __name__ == "__main__":
    main()
