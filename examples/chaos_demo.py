#!/usr/bin/env python3
"""Chaos-tier tour: kill a live gateway and watch it heal itself.

One scenario, all on loopback sockets with ephemeral ports:

1. deploy a 2-region :class:`~repro.serve.gateway.ServeCluster` serving real
   erasure-coded payloads, with a :class:`~repro.serve.supervisor.
   ClusterSupervisor` health-checking both gateways;
2. drive it with the **resilient** wire client (deadlines, deterministic
   backoff, failover to the spare region) while a seeded
   :class:`~repro.serve.chaos.ChaosSchedule` kills the Frankfurt gateway
   mid-run;
3. print what happened: the supervisor's crash→recovery cycle (detection
   lag, entries replayed, fraction of the pre-crash cache warm recovery
   restored), the client's reconnect/retry/failover counters, and the
   conservation check — every intended request is a latency sample, an
   unavailable read, or a failover completion;
4. show the durable decision ledger around the cut: reads, then ``crash``,
   then ``recovery``, then reads again — one history across two processes.

Run with:  PYTHONPATH=src python examples/chaos_demo.py
"""

from __future__ import annotations

import asyncio

from repro.serve.chaos import ChaosInjector, ChaosSchedule, GatewayCrash
from repro.serve.gateway import ServeCluster
from repro.serve.ledger import KIND_CRASH, KIND_RECOVERY
from repro.serve.loadgen import (WireLoadSpec, WireResilience, run_wire_load,
                                 wire_report_table)
from repro.serve.supervisor import (ClusterSupervisor, SupervisorConfig,
                                    recovery_report_table)
from repro.sim.engine import EngineConfig, RegionSpec
from repro.workload.workload import ArrivalSpec, WorkloadSpec

MEGABYTE = 1024 * 1024
SEED = 11
CRASH_AT_S = 0.15

CONFIG = EngineConfig(
    workload=WorkloadSpec(object_count=40, object_size=16 * 1024,
                          request_count=400, seed=SEED),
    regions=[RegionSpec(region="frankfurt", clients=1, strategy="lru-3"),
             RegionSpec(region="dublin", clients=1, strategy="lru-3")],
    cache_capacity_bytes=MEGABYTE,
    topology_seed=SEED,
)

SPEC = WireLoadSpec(
    workload=CONFIG.workload,
    arrival=ArrivalSpec(process="poisson", rate_rps=500.0),
    connections=1,
    requests_per_connection=200,
    resilience=WireResilience(retry_budget=2, base_timeout_ms=150.0,
                              backoff_cap_ms=25.0),
)


async def main() -> None:
    schedule = ChaosSchedule(
        wire_faults=(GatewayCrash("frankfurt", CRASH_AT_S),), seed=SEED)
    print("== chaos schedule ==")
    print(schedule.describe())

    cluster = ServeCluster.from_config(CONFIG, seed=SEED, payloads=True)
    supervisor_config = SupervisorConfig(poll_interval_s=0.02,
                                         warm_recovery=True)
    async with cluster:
        async with ClusterSupervisor(cluster, supervisor_config) as supervisor:
            injector = ChaosInjector(cluster, schedule)
            results, events = await asyncio.gather(
                run_wire_load(cluster.addresses, SPEC, seed=SEED),
                injector.run())
            for _ in range(100):  # let a late recovery finish
                if len(supervisor.recoveries) >= len(injector.crash_log):
                    break
                await asyncio.sleep(0.02)
            recoveries = list(supervisor.recoveries)
        ledger = cluster.gateways["frankfurt"].ledger

    print("\n== what the injector did ==")
    for event in events:
        print(f"  t={event.executed_at_s:6.3f}s  {event.kind:<7s} "
              f"{event.region:<10s} ok={event.ok} {event.detail}")

    print("\n== what the supervisor saw ==")
    print(recovery_report_table(recoveries))

    print("\n== what the client measured ==")
    print(wire_report_table(results).render())
    for region, result in results.items():
        stats, conns = result.stats, result.connections
        completed = stats.count + conns.failed_over
        print(f"{region}: {completed}/{result.requests} completed "
              f"({stats.count} home, {conns.failed_over} failed over, "
              f"{stats.unavailable_reads} unavailable), "
              f"{conns.reconnects} reconnects, "
              f"{conns.requests_per_connection:.0f} requests/connection")
        assert (stats.count + stats.unavailable_reads + conns.failed_over
                == result.requests), "conservation must hold"

    print("\n== the durable ledger around the cut (frankfurt) ==")
    cut = next(i for i, e in enumerate(ledger) if e.kind == KIND_CRASH)
    for entry in ledger[max(cut - 2, 0):cut + 4]:
        marker = " <--" if entry.kind in (KIND_CRASH, KIND_RECOVERY) else ""
        print(f"  {entry.to_line()}{marker}")
    record = recoveries[0]
    print(f"\nwarm recovery replayed {record.entries_replayed} ledger reads "
          f"and restored {record.restored_fraction:.0%} of the pre-crash "
          f"cache in {record.recovery_s * 1000.0:.1f} ms")


if __name__ == "__main__":
    asyncio.run(main())
