#!/usr/bin/env python3
"""Riding out a region outage: degraded reads, availability, recovery.

Erasure coding's promise is that reads survive the loss of up to n − k
chunks.  This example injects faults into the discrete-event engine and
watches the Frankfurt + Dublin deployment ride them out:

1. a clean baseline run (no faults) for comparison;
2. a `RegionOutage` of Sao Paulo — a region *inside* the clients' nearest-9
   backend plan, so reads must re-plan around it (degraded, but with
   10 >= 9 reachable chunks none fail);
3. an `AZFailure` of Frankfurt itself — the local cache goes dark and every
   Frankfurt read falls through to the backend;
4. the windowed p99 time series around the outage: the spike during the
   disturbance and the recovery after the repair.

Run with:  python examples/region_outage.py

See docs/failures.md for the fault model and the degraded-read semantics.
"""

from __future__ import annotations

from repro.client.stats import windowed_latency_series
from repro.sim.engine import EngineConfig, EventEngine, RegionSpec, WorkloadSpec
from repro.sim.faults import AZFailure, FaultSchedule, RegionOutage

MEGABYTE = 1024 * 1024


def run(faults: FaultSchedule | None):
    config = EngineConfig(
        workload=WorkloadSpec(request_count=400, object_count=120),
        regions=(RegionSpec("frankfurt", clients=2),
                 RegionSpec("dublin", clients=2)),
        cache_capacity_bytes=10 * MEGABYTE,
        timer_reconfiguration=True,
        faults=faults,
    )
    engine = EventEngine(config, keep_results=True)
    return engine.run(seed=7)


def describe(label: str, result) -> None:
    stats = result.overall_stats()
    print(f"{label:24s} mean {stats.mean_latency_ms:7.1f} ms   "
          f"p99 {stats.p99_latency_ms:7.1f} ms   "
          f"degraded {stats.degraded_reads:3d}   "
          f"unavailable {stats.unavailable_reads:3d}")


def main() -> None:
    print("Clean baseline vs faulted runs (Frankfurt + Dublin, RS(9, 3)):\n")
    clean = run(None)
    describe("clean", clean)

    # One region down: every read whose plan touched Sao Paulo re-plans
    # against the survivors.  10 of 12 chunks stay reachable >= k = 9, so
    # reads degrade but none fail.
    outage = RegionOutage("sao_paulo", start_s=20.0, end_s=60.0)
    outaged = run(FaultSchedule([outage]))
    describe("sao_paulo outage", outaged)
    stats = outaged.overall_stats()
    assert stats.degraded_reads > 0 and stats.unavailable_reads == 0

    # The client region's own AZ fails: its cache is dark for the window, so
    # warm reads lose their cached chunks and go back to the backend.
    azfail = run(FaultSchedule([AZFailure("frankfurt", start_s=20.0, end_s=60.0)]))
    describe("frankfurt AZ failure", azfail)
    assert azfail.overall_stats().degraded_reads > 0

    # Recovery profile: windowed p99 around the Sao Paulo outage.  The
    # marked windows overlap the outage; p99 spikes there and falls back
    # once the region returns.
    reads = [read
             for region_result in outaged.regions.values()
             for read in region_result.results]
    duration = max(r.duration_s for r in outaged.regions.values())
    print("\nWindowed p99 around the Sao Paulo outage"
          " (* = window overlaps the outage):")
    for window in windowed_latency_series(reads, window_s=duration / 16,
                                          end_s=duration):
        marker = "*" if (window.start_s < outage.end_s
                         and window.end_s > outage.start_s) else " "
        bar = "#" * int(window.p99_ms / 60)
        print(f"  {marker} [{window.start_s:6.1f}s, {window.end_s:6.1f}s) "
              f"p99 {window.p99_ms:7.1f} ms  degraded {window.degraded:2d}  {bar}")


if __name__ == "__main__":
    main()
